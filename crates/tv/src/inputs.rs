//! Test-input generation for refinement checking.
//!
//! The checker evaluates the source and target functions on a set of concrete
//! inputs. For small integer signatures the set is *exhaustive* (every
//! possible argument combination), which makes the check a proof over that
//! domain; for larger signatures it combines corner values with seeded random
//! samples — the same engineering trade-off bounded translation validators
//! make, scaled to the tiny functions the LPO pipeline works with.
//!
//! The *order* of the generated inputs matters to the staged checker (see
//! [`crate::refine`]): its probe phase runs only the leading
//! `TvConfig::probe_inputs` inputs, so the front of the list should be the
//! most refutation-dense. Exhaustive sets lead with the small patterns
//! (0, 1, 2, …) and sampled sets lead with the corner-value diagonal
//! (zero/one/all-ones/signed extremes) — exactly the inputs that kill
//! almost every wrong candidate — before the random tail.

use lpo_interp::memory::{Allocation, Memory};
use lpo_interp::value::{EvalValue, PtrValue};
use lpo_ir::apint::ApInt;
use lpo_ir::function::Function;
use lpo_ir::types::Type;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size of the allocation bound to each pointer argument.
pub const PTR_ALLOC_SIZE: usize = 64;

/// One concrete input: argument values plus the initial memory they refer to.
#[derive(Clone, Debug)]
pub struct TestInput {
    /// One value per function parameter.
    pub args: Vec<EvalValue>,
    /// The initial memory (holds the allocations pointer arguments point into).
    pub memory: Memory,
}

/// Configuration of the input generator.
#[derive(Clone, Debug)]
pub struct InputConfig {
    /// If the total number of integer input bits is at most this, enumerate
    /// the entire input space.
    pub exhaustive_bits: u32,
    /// Number of random samples when the space is too large to enumerate.
    pub random_samples: usize,
    /// RNG seed, so verification verdicts are reproducible.
    pub seed: u64,
}

impl Default for InputConfig {
    fn default() -> Self {
        Self { exhaustive_bits: 16, random_samples: 192, seed: 0x1b0_5eed }
    }
}

/// Generates the test inputs for a function signature.
///
/// Pointer parameters are each bound to a fresh [`PTR_ALLOC_SIZE`]-byte
/// allocation whose contents vary across inputs.
pub fn generate_inputs(func: &Function, config: &InputConfig) -> Vec<TestInput> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    if let Some(inputs) = try_exhaustive(func, config) {
        return inputs;
    }
    let mut inputs = Vec::new();
    // Corner-value cross products are capped to avoid explosion: we take the
    // "diagonal plus corners-of-first-two-args" pattern.
    let corner_sets: Vec<Vec<EvalValue>> =
        func.params.iter().map(|p| corner_values(&p.ty)).collect();
    let max_corners = corner_sets.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..max_corners {
        let args: Vec<EvalValue> = corner_sets
            .iter()
            .map(|set| set[i % set.len()].clone())
            .collect();
        inputs.push(bind_memory(func, args, &mut rng, i as u64));
    }
    if corner_sets.len() >= 2 {
        for i in 0..corner_sets[0].len().min(6) {
            for j in 0..corner_sets[1].len().min(6) {
                let mut args = vec![corner_sets[0][i].clone(), corner_sets[1][j].clone()];
                for set in &corner_sets[2..] {
                    args.push(set[(i + j) % set.len()].clone());
                }
                inputs.push(bind_memory(func, args, &mut rng, (i * 31 + j) as u64));
            }
        }
    }
    for k in 0..config.random_samples {
        let args: Vec<EvalValue> =
            func.params.iter().map(|p| random_value(&p.ty, &mut rng)).collect();
        inputs.push(bind_memory(func, args, &mut rng, k as u64));
    }
    inputs
}

/// The number of inputs [`generate_inputs`] produces for `func`, computed
/// without materializing (or evaluating) anything. The execution engine uses
/// this to estimate a case's Stage-3 shard count before verification runs;
/// it is pinned equal to `generate_inputs(func, config).len()` by a test.
pub fn input_count(func: &Function, config: &InputConfig) -> usize {
    if let Some(bits) = exhaustive_bits(func, config) {
        return 1usize << bits;
    }
    let corner_lens: Vec<usize> = func.params.iter().map(|p| corner_values(&p.ty).len()).collect();
    let mut count = corner_lens.iter().copied().max().unwrap_or(0);
    if corner_lens.len() >= 2 {
        count += corner_lens[0].min(6) * corner_lens[1].min(6);
    }
    count + config.random_samples
}

/// Total input bits when the signature is exhaustively enumerable within
/// `config.exhaustive_bits`, else `None`.
fn exhaustive_bits(func: &Function, config: &InputConfig) -> Option<u32> {
    let mut total_bits: u32 = 0;
    for p in &func.params {
        match &p.ty {
            Type::Int(w) => total_bits += w,
            Type::Vector(n, elem) => match elem.as_ref() {
                Type::Int(w) => total_bits += n * w,
                _ => return None,
            },
            _ => return None,
        }
        if total_bits > config.exhaustive_bits {
            return None;
        }
    }
    Some(total_bits)
}

fn try_exhaustive(func: &Function, config: &InputConfig) -> Option<Vec<TestInput>> {
    let total_bits = exhaustive_bits(func, config)?;
    let count: u128 = 1u128 << total_bits;
    let mut inputs = Vec::with_capacity(count as usize);
    for pattern in 0..count {
        let mut remaining = pattern;
        let mut args = Vec::with_capacity(func.params.len());
        for p in &func.params {
            let (value, rest) = decode_arg(&p.ty, remaining);
            remaining = rest;
            args.push(value);
        }
        inputs.push(TestInput { args, memory: Memory::new() });
    }
    Some(inputs)
}

fn decode_arg(ty: &Type, bits: u128) -> (EvalValue, u128) {
    match ty {
        Type::Int(w) => (EvalValue::Int(ApInt::new(*w, bits)), bits >> w),
        Type::Vector(n, elem) => {
            let w = elem.int_width().expect("checked in try_exhaustive");
            let mut rest = bits;
            let mut lanes = Vec::with_capacity(*n as usize);
            for _ in 0..*n {
                lanes.push(EvalValue::Int(ApInt::new(w, rest)));
                rest >>= w;
            }
            (EvalValue::Vector(lanes), rest)
        }
        _ => unreachable!("non-integer argument in exhaustive mode"),
    }
}

/// The corner values we always test for a given scalar/vector type.
pub fn corner_values(ty: &Type) -> Vec<EvalValue> {
    match ty {
        Type::Int(w) => {
            let mut vals = vec![
                ApInt::zero(*w),
                ApInt::one(*w),
                ApInt::all_ones(*w),
                ApInt::signed_min(*w),
                ApInt::signed_max(*w),
                ApInt::new(*w, 2),
                ApInt::from_i128(*w, -2),
            ];
            if *w >= 8 {
                vals.push(ApInt::new(*w, 16));
                vals.push(ApInt::new(*w, 255));
                vals.push(ApInt::new(*w, 0xaa));
            }
            vals.dedup();
            vals.into_iter().map(EvalValue::Int).collect()
        }
        Type::Float(k) => [0.0, -0.0, 1.0, -1.0, 0.5, 2.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 255.5]
            .iter()
            .map(|v| EvalValue::Float(*k, *v))
            .collect(),
        Type::Ptr => vec![EvalValue::Ptr(PtrValue { alloc: usize::MAX, offset: 0 })],
        Type::Vector(n, elem) => {
            let scalars = corner_values(elem);
            let mut out = Vec::new();
            for (i, _) in scalars.iter().enumerate() {
                let lanes: Vec<EvalValue> = (0..*n as usize)
                    .map(|lane| scalars[(i + lane) % scalars.len()].clone())
                    .collect();
                out.push(EvalValue::Vector(lanes));
            }
            out
        }
        Type::Void => vec![],
    }
}

/// A seeded random value of the given type.
pub fn random_value(ty: &Type, rng: &mut StdRng) -> EvalValue {
    match ty {
        Type::Int(w) => {
            let raw: u128 = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
            EvalValue::Int(ApInt::new(*w, raw))
        }
        Type::Float(k) => {
            let choice: u8 = rng.gen_range(0..10);
            let v = match choice {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => 0.0,
                _ => (rng.gen::<f64>() - 0.5) * 1000.0,
            };
            EvalValue::Float(*k, v)
        }
        Type::Ptr => EvalValue::Ptr(PtrValue { alloc: usize::MAX, offset: 0 }),
        Type::Vector(n, elem) => {
            EvalValue::Vector((0..*n).map(|_| random_value(elem, rng)).collect())
        }
        Type::Void => EvalValue::Undef,
    }
}

/// Binds every pointer argument to a fresh allocation with varied contents.
fn bind_memory(func: &Function, mut args: Vec<EvalValue>, rng: &mut StdRng, salt: u64) -> TestInput {
    let mut memory = Memory::new();
    for (i, p) in func.params.iter().enumerate() {
        if p.ty.is_ptr() {
            let mut bytes = vec![0u8; PTR_ALLOC_SIZE];
            match salt % 4 {
                0 => {}
                1 => bytes.iter_mut().for_each(|b| *b = 0xff),
                2 => bytes.iter_mut().enumerate().for_each(|(j, b)| *b = j as u8),
                _ => bytes.iter_mut().for_each(|b| *b = rng.gen()),
            }
            let alloc = memory.allocate(Allocation::with_bytes(bytes));
            args[i] = EvalValue::Ptr(PtrValue { alloc, offset: 0 });
        }
    }
    TestInput { args, memory }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    #[test]
    fn small_signatures_are_exhaustive() {
        let f = parse_function("define i8 @f(i8 %x) {\n ret i8 %x\n}").unwrap();
        let inputs = generate_inputs(&f, &InputConfig::default());
        assert_eq!(inputs.len(), 256);
        let f2 = parse_function("define i8 @f(i8 %x, i8 %y) {\n ret i8 %x\n}").unwrap();
        let inputs2 = generate_inputs(&f2, &InputConfig::default());
        assert_eq!(inputs2.len(), 65536);
    }

    #[test]
    fn large_signatures_are_sampled() {
        let f = parse_function("define i32 @f(i32 %x, i32 %y) {\n ret i32 %x\n}").unwrap();
        let config = InputConfig::default();
        let inputs = generate_inputs(&f, &config);
        assert!(inputs.len() > config.random_samples);
        assert!(inputs.len() < 5000);
        // Corner values are present: find x == INT_MIN.
        assert!(inputs.iter().any(|i| {
            matches!(&i.args[0], EvalValue::Int(v) if *v == ApInt::signed_min(32))
        }));
    }

    #[test]
    fn pointer_args_get_allocations() {
        let f = parse_function("define i32 @f(ptr %p) {\n %v = load i32, ptr %p, align 4\n ret i32 %v\n}").unwrap();
        let inputs = generate_inputs(&f, &InputConfig::default());
        assert!(!inputs.is_empty());
        for input in &inputs {
            let ptr = input.args[0].as_ptr().expect("pointer arg");
            assert_eq!(input.memory.allocation(ptr.alloc).unwrap().size(), PTR_ALLOC_SIZE);
        }
        // Contents vary across inputs.
        let first = inputs[0].memory.allocation(0).unwrap().bytes().to_vec();
        assert!(inputs.iter().any(|i| i.memory.allocation(0).unwrap().bytes() != &first[..]));
    }

    #[test]
    fn deterministic_given_same_seed() {
        let f = parse_function("define i32 @f(i32 %x) {\n ret i32 %x\n}").unwrap();
        let a = generate_inputs(&f, &InputConfig::default());
        let b = generate_inputs(&f, &InputConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.args, y.args);
        }
    }

    #[test]
    fn vector_exhaustive_when_small() {
        let f = parse_function("define <4 x i2> @f(<4 x i2> %x) {\n ret <4 x i2> %x\n}").unwrap();
        let inputs = generate_inputs(&f, &InputConfig::default());
        assert_eq!(inputs.len(), 256); // 4 lanes × 2 bits = 8 bits
    }

    #[test]
    fn input_count_matches_generate_inputs() {
        let signatures = [
            "define i8 @f(i8 %x) {\n ret i8 %x\n}",
            "define i8 @f(i8 %x, i8 %y) {\n ret i8 %x\n}",
            "define i32 @f(i32 %x) {\n ret i32 %x\n}",
            "define i32 @f(i32 %x, i32 %y) {\n ret i32 %x\n}",
            "define i64 @f(i64 %x, i64 %y, i64 %z) {\n ret i64 %x\n}",
            "define i1 @f(double %x) {\n %r = fcmp oeq double %x, 1.0\n ret i1 %r\n}",
            "define i32 @f(ptr %p) {\n %v = load i32, ptr %p, align 4\n ret i32 %v\n}",
            "define <4 x i2> @f(<4 x i2> %x) {\n ret <4 x i2> %x\n}",
            "define <4 x i8> @f(<4 x i8> %x, i32 %y) {\n ret <4 x i8> %x\n}",
        ];
        for text in signatures {
            let f = parse_function(text).unwrap();
            for config in [
                InputConfig::default(),
                InputConfig { exhaustive_bits: 10, random_samples: 48, seed: 1 },
            ] {
                assert_eq!(
                    input_count(&f, &config),
                    generate_inputs(&f, &config).len(),
                    "input_count diverged for {text}"
                );
            }
        }
    }

    #[test]
    fn corner_values_cover_float_specials() {
        let corners = corner_values(&Type::double());
        assert!(corners.iter().any(|v| matches!(v, EvalValue::Float(_, x) if x.is_nan())));
        assert!(corners.iter().any(|v| matches!(v, EvalValue::Float(_, x) if x.is_infinite())));
        let int_corners = corner_values(&Type::i8());
        assert!(int_corners.contains(&EvalValue::int(8, 0x80)));
        assert!(int_corners.contains(&EvalValue::int(8, 0x7f)));
    }
}
