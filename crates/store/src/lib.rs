//! # lpo-store
//!
//! A durable, crash-safe store for Stage-3 verdicts and per-case completion
//! records: the persistence layer underneath fault-tolerant discovery runs
//! (and, eventually, the LPO-as-a-service daemon of ROADMAP item 1).
//!
//! ## What it stores
//!
//! Two record namespaces share one append-only log file:
//!
//! * **verdict records** — the outcome of one Stage-3 refinement check, keyed
//!   by the `(source digest, candidate digest)` pair of
//!   `lpo_ir::hash::hash_function` and versioned by a caller-supplied version
//!   string (pipeline revision + model profile). A verdict is verified once
//!   *ever*: later runs replay the stored verdict instead of re-sweeping.
//! * **case records** — one opaque per-case completion blob keyed by
//!   `(run key, case key)`. Drivers checkpoint each finished case here so a
//!   killed run can `--resume` instead of restarting.
//!
//! The store does not interpret blobs; serialization lives with the callers
//! (`lpo-core` for both namespaces), keeping this crate dependency-free.
//!
//! ## Crash safety
//!
//! The log is a sequence of self-delimiting records:
//!
//! ```text
//! "LPOR" (4 bytes) | payload length (u32 LE) | FNV-1a 64 checksum (u64 LE) | payload
//! ```
//!
//! A record is trusted only when its magic, length, checksum and payload
//! syntax all validate. A process killed mid-append leaves a torn tail that
//! fails one of those checks; the next [`VerdictStore::open`] detects it,
//! keeps the valid prefix, logs a warning, and rewrites the truncated file
//! via write-temp-then-rename — so the recovery itself is atomic and a crash
//! *during recovery* still leaves either the old or the new file, never a
//! half-written one. Corrupt bytes are never trusted, and nothing after the
//! first bad record is (append order means later records may depend on the
//! torn one being absent).
//!
//! Within one log, the latest record for a key wins, so re-recording a key is
//! an append, not a rewrite.
//!
//! ## Single-writer locking
//!
//! One process owns a store file at a time, enforced by a sibling
//! `<file>.lock` containing the owner's PID. A conflicting open fails with
//! [`StoreError::Locked`] instead of corrupting the log. A lock whose owner
//! is no longer alive (the SIGKILL'd run the store exists to survive) is
//! detected via `/proc/<pid>` and stolen with a logged warning.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Magic bytes opening every record.
pub const RECORD_MAGIC: [u8; 4] = *b"LPOR";

/// Per-record header size: magic + payload length + checksum.
const HEADER_LEN: usize = 4 + 4 + 8;

/// Hard cap on a single record payload — anything larger is treated as a
/// corrupt length field rather than an allocation request.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Why a store could not be opened.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure (open, read, rename, ...).
    Io(std::io::Error),
    /// Another live process holds the store's lock file.
    Locked {
        /// The PID recorded in the lock file, when it parsed.
        owner_pid: Option<u32>,
        /// The lock file path, for the error message.
        lock_path: PathBuf,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "verdict store I/O error: {e}"),
            StoreError::Locked { owner_pid, lock_path } => match owner_pid {
                Some(pid) => write!(
                    f,
                    "verdict store is locked by live process {pid} ({}); \
                     a store file has exactly one writer",
                    lock_path.display()
                ),
                None => write!(
                    f,
                    "verdict store is locked ({}); a store file has exactly one writer",
                    lock_path.display()
                ),
            },
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Hit/replay accounting for one store handle. Snapshot with
/// [`VerdictStore::stats`]; drivers report the before/after delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Verdict lookups answered from the store (Stage 3 skipped entirely).
    pub verdict_hits: usize,
    /// Verdict lookups that missed (verified fresh, then recorded).
    pub verdict_misses: usize,
    /// Completed cases replayed from checkpoint records on `--resume`.
    pub case_replays: usize,
}

impl StoreStats {
    /// The counters accumulated since `earlier` was taken.
    pub fn since(self, earlier: StoreStats) -> StoreStats {
        StoreStats {
            verdict_hits: self.verdict_hits - earlier.verdict_hits,
            verdict_misses: self.verdict_misses - earlier.verdict_misses,
            case_replays: self.case_replays - earlier.case_replays,
        }
    }

    /// Folds another snapshot's counts into this one.
    pub fn absorb(&mut self, other: StoreStats) {
        self.verdict_hits += other.verdict_hits;
        self.verdict_misses += other.verdict_misses;
        self.case_replays += other.case_replays;
    }

    /// True when every counter is zero (nothing to report).
    pub fn is_empty(&self) -> bool {
        *self == StoreStats::default()
    }

    /// Fraction of verdict lookups answered from the store, in `0.0..=1.0`
    /// (`0.0` when there were no lookups at all). This is the cache-hit rate
    /// the serving layer reports and `BENCH_baseline.json` gates.
    pub fn verdict_hit_rate(&self) -> f64 {
        let lookups = self.verdict_hits + self.verdict_misses;
        if lookups == 0 {
            0.0
        } else {
            self.verdict_hits as f64 / lookups as f64
        }
    }
}

/// One parsed log record.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Record {
    Verdict { version: String, src: u64, tgt: u64, blob: String },
    Case { run_key: String, case_key: String, blob: String },
}

struct Inner {
    /// Open append handle, created lazily by the first append so an untouched
    /// store never leaves a zero-length file behind. `None` before that, for
    /// in-memory stores, and after an append error degraded the store to
    /// memory-only.
    file: Option<File>,
    /// Where the lazy append handle opens; `None` = in-memory / degraded.
    append_path: Option<PathBuf>,
    verdicts: HashMap<(String, u64, u64), String>,
    cases: HashMap<(String, String), String>,
}

/// The durable verdict + checkpoint store. See the crate docs for the format
/// and crash-safety argument.
pub struct VerdictStore {
    path: Option<PathBuf>,
    lock_path: Option<PathBuf>,
    inner: Mutex<Inner>,
    verdict_hits: AtomicUsize,
    verdict_misses: AtomicUsize,
    case_replays: AtomicUsize,
    warnings: Mutex<Vec<String>>,
}

impl fmt::Debug for VerdictStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (verdicts, cases) = self.counts();
        f.debug_struct("VerdictStore")
            .field("path", &self.path)
            .field("verdicts", &verdicts)
            .field("cases", &cases)
            .finish()
    }
}

impl VerdictStore {
    /// Opens (creating if missing) the store at `path`, acquiring its writer
    /// lock and recovering from any torn tail left by a crashed writer.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }

        let mut warnings = Vec::new();
        let lock_path = acquire_lock(&path, &mut warnings)?;

        let mut store = Self {
            path: Some(path.clone()),
            lock_path: Some(lock_path),
            inner: Mutex::new(Inner {
                file: None,
                append_path: Some(path.clone()),
                verdicts: HashMap::new(),
                cases: HashMap::new(),
            }),
            verdict_hits: AtomicUsize::new(0),
            verdict_misses: AtomicUsize::new(0),
            case_replays: AtomicUsize::new(0),
            warnings: Mutex::new(warnings),
        };
        store.load(&path)?;
        Ok(store)
    }

    /// A store with no backing file: same semantics, nothing durable. Used by
    /// tests comparing store-on/off behaviour without touching disk.
    pub fn in_memory() -> Self {
        Self {
            path: None,
            lock_path: None,
            inner: Mutex::new(Inner {
                file: None,
                append_path: None,
                verdicts: HashMap::new(),
                cases: HashMap::new(),
            }),
            verdict_hits: AtomicUsize::new(0),
            verdict_misses: AtomicUsize::new(0),
            case_replays: AtomicUsize::new(0),
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// The backing file, when there is one.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Replays the log at `path` into the in-memory maps, truncating (via
    /// write-temp-then-rename) at the first corrupt or torn record.
    fn load(&mut self, path: &Path) -> Result<(), StoreError> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        }
        if bytes.is_empty() {
            // A zero-length file is what `creat()` + crash-before-append
            // leaves behind: a valid, empty log.
            self.warn(format!("store {}: empty file, starting fresh", path.display()));
            return Ok(());
        }

        let mut offset = 0usize;
        let mut bad: Option<String> = None;
        let mut kept = 0usize;
        {
            let inner = self.inner.get_mut().expect("store lock poisoned");
            while offset < bytes.len() {
                match decode_record(&bytes[offset..]) {
                    Ok((record, consumed)) => {
                        match record {
                            Record::Verdict { version, src, tgt, blob } => {
                                inner.verdicts.insert((version, src, tgt), blob);
                            }
                            Record::Case { run_key, case_key, blob } => {
                                inner.cases.insert((run_key, case_key), blob);
                            }
                        }
                        offset += consumed;
                        kept += 1;
                    }
                    Err(reason) => {
                        bad = Some(reason);
                        break;
                    }
                }
            }
        }

        if let Some(reason) = bad {
            let dropped = bytes.len() - offset;
            self.warn(format!(
                "store {}: {reason} at offset {offset}; dropping {dropped} trailing byte(s) \
                 and keeping the {kept} valid record(s) before it",
                path.display(),
            ));
            // Atomic truncation: never shorten the live file in place.
            let tmp = temp_sibling(path);
            {
                let mut f = File::create(&tmp)?;
                f.write_all(&bytes[..offset])?;
                f.sync_all().ok();
            }
            fs::rename(&tmp, path)?;
        }
        Ok(())
    }

    /// Looks up the stored verdict for a `(source, candidate)` digest pair
    /// under `version`, counting the hit or miss.
    pub fn verdict(&self, version: &str, src: u64, tgt: u64) -> Option<String> {
        let inner = self.inner.lock().expect("store lock poisoned");
        let found = inner.verdicts.get(&(version.to_string(), src, tgt)).cloned();
        drop(inner);
        match &found {
            Some(_) => self.verdict_hits.fetch_add(1, Ordering::Relaxed),
            None => self.verdict_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records (and durably appends, for on-disk stores) one verdict.
    pub fn record_verdict(&self, version: &str, src: u64, tgt: u64, blob: &str) {
        let record = Record::Verdict {
            version: version.to_string(),
            src,
            tgt,
            blob: blob.to_string(),
        };
        let mut inner = self.inner.lock().expect("store lock poisoned");
        self.append(&mut inner, &record);
        inner.verdicts.insert((version.to_string(), src, tgt), blob.to_string());
    }

    /// Looks up the checkpointed completion blob for one case of one run,
    /// counting a replay on hit.
    pub fn case(&self, run_key: &str, case_key: &str) -> Option<String> {
        let inner = self.inner.lock().expect("store lock poisoned");
        let found = inner.cases.get(&(run_key.to_string(), case_key.to_string())).cloned();
        drop(inner);
        if found.is_some() {
            self.case_replays.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records (and durably appends) one completed case.
    pub fn record_case(&self, run_key: &str, case_key: &str, blob: &str) {
        let record = Record::Case {
            run_key: run_key.to_string(),
            case_key: case_key.to_string(),
            blob: blob.to_string(),
        };
        let mut inner = self.inner.lock().expect("store lock poisoned");
        self.append(&mut inner, &record);
        inner.cases.insert((run_key.to_string(), case_key.to_string()), blob.to_string());
    }

    fn append(&self, inner: &mut Inner, record: &Record) {
        if inner.file.is_none() {
            let Some(path) = inner.append_path.clone() else { return };
            match OpenOptions::new().create(true).append(true).open(&path) {
                Ok(f) => inner.file = Some(f),
                Err(e) => {
                    self.warn(format!("store append open failed ({e}); running memory-only"));
                    inner.append_path = None;
                    return;
                }
            }
        }
        let Some(file) = inner.file.as_mut() else { return };
        let framed = encode_record(record);
        // An append interrupted by a crash leaves a torn tail; the next
        // open's checksum scan drops it. An append error (disk full, ...)
        // degrades the store to lossy-but-correct: the in-memory map still
        // serves this run, later runs just recompute.
        if let Err(e) = file.write_all(&framed).and_then(|()| file.flush()) {
            self.warn(format!("store append failed ({e}); record kept in memory only"));
            inner.file = None;
            inner.append_path = None;
        }
    }

    /// `(verdict, case)` record counts currently loaded.
    pub fn counts(&self) -> (usize, usize) {
        let inner = self.inner.lock().expect("store lock poisoned");
        (inner.verdicts.len(), inner.cases.len())
    }

    /// Hit/replay accounting for this handle's lifetime.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            verdict_hits: self.verdict_hits.load(Ordering::Relaxed),
            verdict_misses: self.verdict_misses.load(Ordering::Relaxed),
            case_replays: self.case_replays.load(Ordering::Relaxed),
        }
    }

    /// Recovery/degradation warnings accumulated so far (also printed to
    /// stderr as they happen).
    pub fn warnings(&self) -> Vec<String> {
        self.warnings.lock().expect("warnings lock poisoned").clone()
    }

    fn warn(&self, message: String) {
        eprintln!("[lpo-store] {message}");
        self.warnings.lock().expect("warnings lock poisoned").push(message);
    }
}

impl Drop for VerdictStore {
    fn drop(&mut self) {
        if let Some(lock) = &self.lock_path {
            // Best-effort: a failed remove degrades to the stale-lock path
            // (PID no longer alive) on the next open.
            let _ = fs::remove_file(lock);
        }
    }
}

/// FNV-1a 64, the same cheap checksum family the IR hasher uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn encode_record(record: &Record) -> Vec<u8> {
    let payload = match record {
        Record::Verdict { version, src, tgt, blob } => format!(
            "V\t{}\t{src:016x}\t{tgt:016x}\t{}",
            escape(version),
            escape(blob)
        ),
        Record::Case { run_key, case_key, blob } => {
            format!("C\t{}\t{}\t{}", escape(run_key), escape(case_key), escape(blob))
        }
    };
    let payload = payload.into_bytes();
    let mut framed = Vec::with_capacity(HEADER_LEN + payload.len());
    framed.extend_from_slice(&RECORD_MAGIC);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed
}

/// Decodes one record from the front of `bytes`, returning it and the bytes
/// consumed, or the reason the front is not a trustworthy record.
fn decode_record(bytes: &[u8]) -> Result<(Record, usize), String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!("torn record header ({} byte(s) left)", bytes.len()));
    }
    if bytes[..4] != RECORD_MAGIC {
        return Err("bad record magic".to_string());
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(format!("implausible payload length {len}"));
    }
    let len = len as usize;
    if bytes.len() < HEADER_LEN + len {
        return Err(format!(
            "torn record payload ({} of {len} byte(s) present)",
            bytes.len() - HEADER_LEN
        ));
    }
    let checksum = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..HEADER_LEN + len];
    if fnv1a(payload) != checksum {
        return Err("record checksum mismatch".to_string());
    }
    let payload = std::str::from_utf8(payload).map_err(|_| "record payload is not UTF-8")?;
    let record = parse_payload(payload).ok_or_else(|| "unparseable record payload".to_string())?;
    Ok((record, HEADER_LEN + len))
}

fn parse_payload(payload: &str) -> Option<Record> {
    let mut fields = payload.split('\t');
    match fields.next()? {
        "V" => {
            let version = unescape(fields.next()?)?;
            let src = u64::from_str_radix(fields.next()?, 16).ok()?;
            let tgt = u64::from_str_radix(fields.next()?, 16).ok()?;
            let blob = unescape(fields.next()?)?;
            fields.next().is_none().then_some(Record::Verdict { version, src, tgt, blob })
        }
        "C" => {
            let run_key = unescape(fields.next()?)?;
            let case_key = unescape(fields.next()?)?;
            let blob = unescape(fields.next()?)?;
            fields.next().is_none().then_some(Record::Case { run_key, case_key, blob })
        }
        _ => None,
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

fn lock_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".lock");
    path.with_file_name(name)
}

/// Creates `<path>.lock` exclusively, stealing a stale lock whose recorded
/// owner is no longer alive (the crashed run this store exists to survive).
fn acquire_lock(path: &Path, warnings: &mut Vec<String>) -> Result<PathBuf, StoreError> {
    let lock_path = lock_sibling(path);
    for attempt in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(&lock_path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                return Ok(lock_path);
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                let owner_pid = fs::read_to_string(&lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                let stale = match owner_pid {
                    Some(pid) => pid != std::process::id() && !process_alive(pid),
                    None => true, // unreadable/garbled lock: treat as stale
                };
                if stale && attempt == 0 {
                    let message = format!(
                        "stale lock {} (owner {:?} not alive); stealing it",
                        lock_path.display(),
                        owner_pid
                    );
                    eprintln!("[lpo-store] {message}");
                    warnings.push(message);
                    let _ = fs::remove_file(&lock_path);
                    continue;
                }
                return Err(StoreError::Locked { owner_pid, lock_path });
            }
            Err(e) => return Err(e.into()),
        }
    }
    unreachable!("lock acquisition loops at most twice")
}

/// Whether a PID names a live process. On non-Linux platforms we cannot
/// cheaply tell, so every foreign lock is treated as live (the conservative
/// answer: never steal what might be held).
fn process_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique temp path per test (no tempfile crate in the offline build).
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lpo-store-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.log"))
    }

    fn clean(path: &Path) {
        let _ = fs::remove_file(path);
        let _ = fs::remove_file(lock_sibling(path));
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = scratch("roundtrip");
        clean(&path);
        {
            let store = VerdictStore::open(&path).unwrap();
            store.record_verdict("r1/model", 0xabc, 0xdef, "correct;17;false");
            store.record_verdict("r1/model", 0xabc, 0x123, "incorrect\twith\ntabs\\and newlines");
            store.record_case("run-a", "case-0", "blob zero");
            store.record_case("run-a", "case-0", "blob zero, rewritten");
            assert_eq!(store.verdict("r1/model", 0xabc, 0xdef).as_deref(), Some("correct;17;false"));
            assert_eq!(store.verdict("r1/other", 0xabc, 0xdef), None, "version is part of the key");
            assert_eq!(store.stats().verdict_hits, 1);
            assert_eq!(store.stats().verdict_misses, 1);
        }
        let store = VerdictStore::open(&path).unwrap();
        assert_eq!(store.counts(), (2, 1));
        assert_eq!(
            store.verdict("r1/model", 0xabc, 0x123).as_deref(),
            Some("incorrect\twith\ntabs\\and newlines"),
            "escaping round-trips through the log"
        );
        assert_eq!(store.case("run-a", "case-0").as_deref(), Some("blob zero, rewritten"));
        assert_eq!(store.stats().case_replays, 1);
        clean(&path);
    }

    #[test]
    fn torn_tail_is_truncated_with_a_warning() {
        let path = scratch("torn-tail");
        clean(&path);
        {
            let store = VerdictStore::open(&path).unwrap();
            store.record_verdict("v", 1, 2, "first");
            store.record_verdict("v", 3, 4, "second");
        }
        // Simulate a crash mid-append: chop bytes off the tail record.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let store = VerdictStore::open(&path).unwrap();
        assert_eq!(store.verdict("v", 1, 2).as_deref(), Some("first"));
        assert_eq!(store.verdict("v", 3, 4), None, "the torn record is never trusted");
        assert!(
            store.warnings().iter().any(|w| w.contains("torn")),
            "warnings: {:?}",
            store.warnings()
        );
        // The truncation was rewritten to disk: a re-open is clean.
        drop(store);
        let store = VerdictStore::open(&path).unwrap();
        assert!(store.warnings().is_empty(), "warnings: {:?}", store.warnings());
        assert_eq!(store.counts(), (1, 0));
        clean(&path);
    }

    #[test]
    fn flipped_checksum_byte_drops_the_record_and_its_suffix() {
        let path = scratch("flipped-byte");
        clean(&path);
        {
            let store = VerdictStore::open(&path).unwrap();
            store.record_verdict("v", 1, 1, "keep");
            store.record_verdict("v", 2, 2, "corrupt me");
            store.record_verdict("v", 3, 3, "after the corruption");
        }
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte inside the *second* record.
        let first_len = {
            let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
            HEADER_LEN + len
        };
        bytes[first_len + HEADER_LEN] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let store = VerdictStore::open(&path).unwrap();
        assert_eq!(store.verdict("v", 1, 1).as_deref(), Some("keep"));
        assert_eq!(store.verdict("v", 2, 2), None);
        assert_eq!(
            store.verdict("v", 3, 3),
            None,
            "nothing after the first bad record is trusted"
        );
        assert!(
            store.warnings().iter().any(|w| w.contains("checksum")),
            "warnings: {:?}",
            store.warnings()
        );
        clean(&path);
    }

    #[test]
    fn empty_file_recovers_to_an_empty_store() {
        let path = scratch("empty");
        clean(&path);
        fs::write(&path, b"").unwrap();
        let store = VerdictStore::open(&path).unwrap();
        assert_eq!(store.counts(), (0, 0));
        assert!(
            store.warnings().iter().any(|w| w.contains("empty")),
            "warnings: {:?}",
            store.warnings()
        );
        store.record_case("r", "c", "works after recovery");
        drop(store);
        assert_eq!(VerdictStore::open(&path).unwrap().counts(), (0, 1));
        clean(&path);
    }

    #[test]
    fn garbage_prefix_means_a_fresh_store() {
        let path = scratch("garbage");
        clean(&path);
        fs::write(&path, b"this was never a store file").unwrap();
        let store = VerdictStore::open(&path).unwrap();
        assert_eq!(store.counts(), (0, 0));
        assert!(store.warnings().iter().any(|w| w.contains("magic")));
        clean(&path);
    }

    #[test]
    fn concurrent_writer_is_rejected_and_lock_is_released_on_drop() {
        let path = scratch("locking");
        clean(&path);
        let first = VerdictStore::open(&path).unwrap();
        match VerdictStore::open(&path) {
            Err(StoreError::Locked { owner_pid, .. }) => {
                assert_eq!(owner_pid, Some(std::process::id()));
            }
            other => panic!("second open must fail with Locked, got {other:?}"),
        }
        drop(first);
        // The lock dies with its owner; reopening succeeds.
        let again = VerdictStore::open(&path).unwrap();
        assert!(again.warnings().is_empty(), "warnings: {:?}", again.warnings());
        clean(&path);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn stale_lock_from_a_dead_process_is_stolen_with_a_warning() {
        let path = scratch("stale-lock");
        clean(&path);
        // No PID this large exists (kernel pid_max caps at 2^22).
        fs::write(lock_sibling(&path), "4000000000\n").unwrap();
        let store = VerdictStore::open(&path).unwrap();
        assert!(
            store.warnings().iter().any(|w| w.contains("stale lock")),
            "warnings: {:?}",
            store.warnings()
        );
        clean(&path);
    }

    #[test]
    fn in_memory_store_has_store_semantics_without_a_file() {
        let store = VerdictStore::in_memory();
        assert!(store.path().is_none());
        store.record_verdict("v", 9, 9, "blob");
        assert_eq!(store.verdict("v", 9, 9).as_deref(), Some("blob"));
        assert_eq!(store.stats(), StoreStats {
            verdict_hits: 1,
            verdict_misses: 0,
            case_replays: 0
        });
    }

    #[test]
    fn stats_since_and_absorb() {
        let a = StoreStats { verdict_hits: 5, verdict_misses: 3, case_replays: 2 };
        let b = StoreStats { verdict_hits: 2, verdict_misses: 1, case_replays: 0 };
        let d = a.since(b);
        assert_eq!(d, StoreStats { verdict_hits: 3, verdict_misses: 2, case_replays: 2 });
        let mut acc = b;
        acc.absorb(d);
        assert_eq!(acc, a);
        assert!(StoreStats::default().is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn verdict_hit_rate_is_hits_over_lookups() {
        let a = StoreStats { verdict_hits: 9, verdict_misses: 1, case_replays: 0 };
        assert!((a.verdict_hit_rate() - 0.9).abs() < 1e-12);
        let all_hits = StoreStats { verdict_hits: 4, verdict_misses: 0, case_replays: 7 };
        assert_eq!(all_hits.verdict_hit_rate(), 1.0);
        // No lookups at all: 0.0, not NaN.
        assert_eq!(StoreStats::default().verdict_hit_rate(), 0.0);
    }
}
