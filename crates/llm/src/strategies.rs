//! The optimization knowledge of the simulated models.
//!
//! A [`Strategy`] is one family of peephole rewrites a model may "know": the
//! fifteen patterns that correspond to optimizations the paper reports (and
//! LLVM later fixed — reused from `lpo-opt::patches`), plus additional
//! families that the RQ2 corpus embeds. Each strategy carries a *difficulty*
//! in `[0, 1]`; whether a simulated model successfully applies a matching
//! strategy is decided by comparing its skill against that difficulty (see
//! [`crate::simulated`]).

use lpo_ir::apint::ApInt;
use lpo_ir::flags::IntFlags;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, BlockId, CastOp, FCmpPred, ICmpPred, InstId, InstKind, Intrinsic};
use lpo_opt::dce::eliminate_dead_code;
use lpo_opt::patches;
use lpo_opt::rewrite::{
    as_const_int, const_bool_of, defining_inst, is_all_ones, is_one, is_zero, mutate,
    replace_with, NamedRule, RewriteRule,
};

/// One rewrite family a model may know.
#[derive(Clone, Copy, Debug)]
pub struct Strategy {
    /// Short name, e.g. `clamp-select` or `patch-128134`.
    pub name: &'static str,
    /// How hard the paper's models found this class of rewrites (0 = trivial).
    pub difficulty: f64,
    /// The rewrite itself.
    pub rule: RewriteRule,
}

/// The full strategy library.
pub fn library() -> Vec<Strategy> {
    let mut lib = Vec::new();
    // Families corresponding to the accepted patches (Table 5).
    let difficulty_of = |name: &str| -> f64 {
        match name {
            "patch-128134" => 0.80,  // adjacent load merging: memory reasoning
            "patch-133367" => 0.62,  // fcmp ord + select
            "patch-142674" => 0.64,  // redundant umax before shl nuw
            "patch-142711" => 0.40,  // icmp of xor
            "patch-143211" => 0.36,  // icmp of negation
            "patch-143636" => 0.55,  // clamp select → smax/umin (Figure 1)
            "patch-154238" => 0.45,  // umin of zext
            "patch-157315" => 0.38,  // low-bit test
            "patch-157370" => 0.34,  // not of icmp
            "patch-157371-1" => 0.52, // usub.sat compare
            "patch-157371-2" => 0.57, // umin-vs-bound compare
            "patch-157524" => 0.42,  // shl/lshr mask
            "patch-163108-1" => 0.60, // exact div · mul
            "patch-163108-2" => 0.58, // or of complementary masks
            "patch-166973" => 0.37,  // redundant zero select
            _ => 0.55,
        }
    };
    for patch in patches::all_patches() {
        lib.push(Strategy {
            name: patch.rule.name,
            difficulty: difficulty_of(patch.rule.name),
            rule: patch.rule.rule,
        });
    }
    // Additional families used by the RQ2 corpus.
    lib.push(Strategy { name: "narrow-sign-check", difficulty: 0.46, rule: narrow_sign_check });
    lib.push(Strategy { name: "neg-via-not", difficulty: 0.48, rule: neg_via_not });
    lib.push(Strategy { name: "abs-of-abs", difficulty: 0.50, rule: abs_of_abs });
    lib.push(Strategy { name: "sat-add-compare", difficulty: 0.63, rule: sat_add_compare });
    lib.push(Strategy { name: "shuffle-identity", difficulty: 0.47, rule: shuffle_identity });
    lib.push(Strategy { name: "fcmp-uno-or", difficulty: 0.72, rule: fcmp_uno_or });
    lib.push(Strategy { name: "select-to-abs", difficulty: 0.59, rule: select_to_abs });
    lib
}

/// Looks up a strategy by name.
pub fn by_name(name: &str) -> Option<Strategy> {
    library().into_iter().find(|s| s.name == name)
}

/// Applies one strategy to a function: scans every instruction, applies the
/// rule wherever it matches, cleans up dead code, and returns the rewritten
/// function if anything changed.
pub fn apply_strategy(strategy: &Strategy, func: &Function) -> Option<Function> {
    let mut out = func.clone();
    let mut changed = false;
    for _ in 0..4 {
        let mut fired = false;
        for block_idx in 0..out.blocks().len() {
            let block = BlockId(block_idx as u32);
            let mut pos = 0;
            while pos < out.block(block).insts.len() {
                let id: InstId = out.block(block).insts[pos];
                if (strategy.rule)(&mut out, id, block, pos) {
                    fired = true;
                } else {
                    pos += 1;
                }
                pos = pos.min(out.block(block).insts.len());
            }
        }
        if !fired {
            break;
        }
        changed = true;
    }
    if !changed {
        return None;
    }
    eliminate_dead_code(&mut out);
    out.compact();
    Some(out)
}

/// Finds the first strategy in the library that rewrites the function, in
/// library order. Returns the strategy and the rewritten function.
pub fn first_applicable(func: &Function) -> Option<(Strategy, Function)> {
    library()
        .into_iter()
        .find_map(|s| apply_strategy(&s, func).map(|f| (s, f)))
}

/// All strategies that can rewrite the function.
pub fn applicable(func: &Function) -> Vec<(Strategy, Function)> {
    library()
        .into_iter()
        .filter_map(|s| apply_strategy(&s, func).map(|f| (s, f)))
        .collect()
}

/// The named-rule view of the extra (non-patch) strategies, for reuse in tests
/// and ablations.
pub fn extra_rules() -> Vec<NamedRule> {
    vec![
        NamedRule { name: "narrow-sign-check", rule: narrow_sign_check },
        NamedRule { name: "neg-via-not", rule: neg_via_not },
        NamedRule { name: "abs-of-abs", rule: abs_of_abs },
        NamedRule { name: "sat-add-compare", rule: sat_add_compare },
        NamedRule { name: "shuffle-identity", rule: shuffle_identity },
        NamedRule { name: "fcmp-uno-or", rule: fcmp_uno_or },
        NamedRule { name: "select-to-abs", rule: select_to_abs },
    ]
}

// ---------------------------------------------------------------------------
// Extra rewrite families
// ---------------------------------------------------------------------------

/// `icmp slt (sext X), 0` → `icmp slt X, 0` (sign is preserved by sext).
fn narrow_sign_check(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::ICmp { pred, lhs, rhs } = inst.kind.clone() else {
        return false;
    };
    if !matches!(pred, ICmpPred::Slt | ICmpPred::Sgt | ICmpPred::Sge | ICmpPred::Sle) || !is_zero(&rhs) {
        return false;
    }
    let Some((_, InstKind::Cast { op: CastOp::SExt, value, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    let narrow_ty = func.value_type(&value);
    let zero = lpo_opt::rewrite::const_int_of(&narrow_ty, 0);
    mutate(func, id, InstKind::ICmp { pred, lhs: value, rhs: zero }, ty)
}

/// `add (xor X, -1), 1` → `sub 0, X` (two's-complement negation).
fn neg_via_not(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Binary { op: BinOp::Add, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    if !is_one(&rhs) {
        return false;
    }
    let Some((_, InstKind::Binary { op: BinOp::Xor, lhs: x, rhs: not_mask, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if !is_all_ones(&not_mask) {
        return false;
    }
    let zero = lpo_opt::rewrite::const_int_of(&ty, 0);
    mutate(
        func,
        id,
        InstKind::Binary { op: BinOp::Sub, lhs: zero, rhs: x, flags: IntFlags::none() },
        ty,
    )
}

/// `abs(abs(X))` → `abs(X)` (when neither call is `is_int_min_poison`).
fn abs_of_abs(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let InstKind::Call { intrinsic: Intrinsic::Abs, args, .. } = inst.kind.clone() else {
        return false;
    };
    if as_const_int(&args[1]).map(|c| c.is_zero()) != Some(true) {
        return false;
    }
    let Some((_, InstKind::Call { intrinsic: Intrinsic::Abs, args: inner_args, .. })) =
        defining_inst(func, &args[0]).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if as_const_int(&inner_args[1]).map(|c| c.is_zero()) != Some(true) {
        return false;
    }
    replace_with(func, id, args[0].clone())
}

/// `icmp ult (uadd.sat X, C), C` → `false` (a saturating add never drops below
/// either operand).
fn sat_add_compare(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::ICmp { pred: ICmpPred::Ult, lhs, rhs } = inst.kind.clone() else {
        return false;
    };
    let Some(c) = as_const_int(&rhs) else {
        return false;
    };
    let Some((_, InstKind::Call { intrinsic: Intrinsic::UaddSat, args, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if as_const_int(&args[1]) != Some(c) {
        return false;
    }
    replace_with(func, id, const_bool_of(&ty, false))
}

/// `shufflevector X, Y, <0, 1, …, n-1>` → `X` (identity shuffle).
fn shuffle_identity(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let InstKind::ShuffleVector { a, mask, .. } = inst.kind.clone() else {
        return false;
    };
    let lanes = func.value_type(&a).lanes().unwrap_or(0) as i32;
    if mask.len() as i32 != lanes || !mask.iter().enumerate().all(|(i, m)| *m == i as i32) {
        return false;
    }
    replace_with(func, id, a)
}

/// `or (fcmp uno X, 0.0), (fcmp olt X, C)` → `fcmp ult X, C` (the unordered
/// predicate already covers the NaN case).
fn fcmp_uno_or(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    if ty != lpo_ir::types::Type::i1() {
        return false;
    }
    let InstKind::Binary { op: BinOp::Or, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    let get_fcmp = |func: &Function, v: &lpo_ir::instruction::Value| {
        defining_inst(func, v).and_then(|(i, k)| match k.clone() {
            InstKind::FCmp { pred, lhs, rhs } => Some((i, pred, lhs, rhs)),
            _ => None,
        })
    };
    for (uno_side, cmp_side) in [(&lhs, &rhs), (&rhs, &lhs)] {
        let Some((_, FCmpPred::Uno, uno_lhs, _)) = get_fcmp(func, uno_side) else { continue };
        let Some((_, pred, cmp_lhs, cmp_rhs)) = get_fcmp(func, cmp_side) else { continue };
        if uno_lhs != cmp_lhs {
            continue;
        }
        let unordered_pred = match pred {
            FCmpPred::Olt => FCmpPred::Ult,
            FCmpPred::Ole => FCmpPred::Ule,
            FCmpPred::Ogt => FCmpPred::Ugt,
            FCmpPred::Oge => FCmpPred::Uge,
            FCmpPred::Oeq => FCmpPred::Ueq,
            FCmpPred::One => FCmpPred::Une,
            _ => continue,
        };
        return mutate(
            func,
            id,
            InstKind::FCmp { pred: unordered_pred, lhs: cmp_lhs, rhs: cmp_rhs },
            ty,
        );
    }
    false
}

/// `select (icmp sgt X, -1), X, (sub 0, X)` → `abs(X)` (without INT_MIN poison).
fn select_to_abs(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    if !ty.is_int_or_int_vector() {
        return false;
    }
    let InstKind::Select { cond, on_true, on_false } = inst.kind.clone() else {
        return false;
    };
    let Some((_, InstKind::ICmp { pred: ICmpPred::Sgt, lhs: x, rhs: minus_one })) =
        defining_inst(func, &cond).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if as_const_int(&minus_one) != Some(ApInt::all_ones(ty.scalar_type().int_width().unwrap_or(1)))
        || on_true != x
    {
        return false;
    }
    let Some((_, InstKind::Binary { op: BinOp::Sub, lhs: zero, rhs: negated, .. })) =
        defining_inst(func, &on_false).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if !is_zero(&zero) || negated != x {
        return false;
    }
    mutate(
        func,
        id,
        InstKind::Call {
            intrinsic: Intrinsic::Abs,
            args: vec![x, lpo_ir::instruction::Value::bool(false)],
            fmf: Default::default(),
        },
        ty,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;
    use lpo_ir::printer::print_function;
    use lpo_tv::refine::verify_refinement;

    fn apply(name: &str, text: &str) -> Option<String> {
        let func = parse_function(text).unwrap();
        let strategy = by_name(name).expect("strategy exists");
        let rewritten = apply_strategy(&strategy, &func)?;
        let verdict = verify_refinement(&func, &rewritten);
        assert!(verdict.is_correct(), "strategy {name} produced a wrong rewrite: {verdict:?}");
        Some(print_function(&rewritten))
    }

    #[test]
    fn library_covers_patches_and_extras() {
        let lib = library();
        assert_eq!(lib.len(), 15 + 7);
        assert!(lib.iter().all(|s| s.difficulty > 0.0 && s.difficulty < 1.0));
        assert!(by_name("patch-143636").is_some());
        assert!(by_name("fcmp-uno-or").is_some());
        assert!(by_name("made-up").is_none());
        // Memory reasoning is the hardest family, simple icmp folds the easiest.
        assert!(by_name("patch-128134").unwrap().difficulty > by_name("patch-157370").unwrap().difficulty);
    }

    #[test]
    fn clamp_strategy_reproduces_figure_1() {
        let out = apply(
            "patch-143636",
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
        )
        .expect("strategy applies");
        assert!(out.contains("llvm.smax.i32"));
        assert!(!out.contains("select"));
    }

    #[test]
    fn extra_strategies_rewrite_and_verify() {
        let out = apply(
            "narrow-sign-check",
            "define i1 @f(i16 %x) {\n %s = sext i16 %x to i64\n %c = icmp slt i64 %s, 0\n ret i1 %c\n}",
        )
        .unwrap();
        assert!(out.contains("icmp slt i16 %x, 0"));

        let out = apply(
            "neg-via-not",
            "define i32 @f(i32 %x) {\n %n = xor i32 %x, -1\n %r = add i32 %n, 1\n ret i32 %r\n}",
        )
        .unwrap();
        assert!(out.contains("sub i32 0, %x"));

        let out = apply(
            "abs-of-abs",
            "define i32 @f(i32 %x) {\n\
             %a = call i32 @llvm.abs.i32(i32 %x, i1 false)\n\
             %b = call i32 @llvm.abs.i32(i32 %a, i1 false)\n ret i32 %b\n}",
        )
        .unwrap();
        assert_eq!(out.matches("llvm.abs").count(), 1);

        let out = apply(
            "sat-add-compare",
            "define i1 @f(i8 %x) {\n\
             %s = call i8 @llvm.uadd.sat.i8(i8 %x, i8 10)\n\
             %c = icmp ult i8 %s, 10\n ret i1 %c\n}",
        )
        .unwrap();
        assert!(out.contains("ret i1 false"));

        let out = apply(
            "shuffle-identity",
            "define <4 x i32> @f(<4 x i32> %v) {\n\
             %s = shufflevector <4 x i32> %v, <4 x i32> %v, <4 x i32> <i32 0, i32 1, i32 2, i32 3>\n\
             ret <4 x i32> %s\n}",
        )
        .unwrap();
        assert!(out.contains("ret <4 x i32> %v"));

        let out = apply(
            "fcmp-uno-or",
            "define i1 @f(double %x) {\n\
             %nan = fcmp uno double %x, 0.000000e+00\n\
             %lt = fcmp olt double %x, 5.000000e+00\n\
             %r = or i1 %nan, %lt\n ret i1 %r\n}",
        )
        .unwrap();
        assert!(out.contains("fcmp ult double %x, 5"));

        let out = apply(
            "select-to-abs",
            "define i32 @f(i32 %x) {\n\
             %c = icmp sgt i32 %x, -1\n\
             %n = sub i32 0, %x\n\
             %s = select i1 %c, i32 %x, i32 %n\n ret i32 %s\n}",
        )
        .unwrap();
        assert!(out.contains("llvm.abs.i32"));
    }

    #[test]
    fn strategies_do_not_fire_on_unrelated_code() {
        let func = parse_function(
            "define i32 @f(i32 %x, i32 %y) {\n %a = mul i32 %x, %y\n %b = add i32 %a, %y\n ret i32 %b\n}",
        )
        .unwrap();
        assert!(first_applicable(&func).is_none());
        assert!(applicable(&func).is_empty());
    }

    #[test]
    fn vector_clamp_is_covered_by_the_same_strategy() {
        let out = apply(
            "patch-143636",
            "define <4 x i8> @src(<4 x i32> %x) {\n\
             %c = icmp slt <4 x i32> %x, zeroinitializer\n\
             %m = call <4 x i32> @llvm.umin.v4i32(<4 x i32> %x, <4 x i32> splat (i32 255))\n\
             %t = trunc nuw <4 x i32> %m to <4 x i8>\n\
             %s = select <4 x i1> %c, <4 x i8> zeroinitializer, <4 x i8> %t\n\
             ret <4 x i8> %s\n}",
        )
        .expect("vector clamp handled");
        assert!(out.contains("llvm.smax.v4i32"));
    }

    #[test]
    fn multiple_strategies_can_apply_to_one_function() {
        let func = parse_function(
            "define i1 @f(i32 %x) {\n\
             %n = sub i32 0, %x\n\
             %c = icmp eq i32 %n, 0\n\
             %d = xor i1 %c, true\n\
             ret i1 %d\n}",
        )
        .unwrap();
        let hits = applicable(&func);
        assert!(hits.len() >= 2, "expected both the neg-compare and not-of-icmp strategies, got {}", hits.len());
    }
}
