//! The language-model interface the LPO pipeline talks to.
//!
//! The pipeline is model-agnostic: it builds a [`Prompt`] (system
//! instructions, the wrapped instruction sequence, and optional feedback from
//! the verifier) and receives a [`Completion`] (candidate IR text plus
//! token/latency accounting). The paper drives commercial and open-source
//! LLMs through this interface; this reproduction drives
//! [`SimulatedModel`](crate::simulated::SimulatedModel)s.
//!
//! The interface is split in two so the discovery loop can run on many
//! threads at once:
//!
//! * a [`ModelFactory`] is the shared, immutable description of a model
//!   (name, capability profile, pricing). It is `Send + Sync` and lives for
//!   the whole experiment;
//! * a [`ModelSession`] is the cheap, mutable per-case conversation the
//!   factory spawns for one instruction sequence. Sessions are seeded
//!   deterministically from `(round, case_index)`, so a run produces
//!   bit-identical results regardless of how many worker threads execute it.

use std::time::Duration;

/// The system prompt used by LPO (paraphrasing Figure 2 of the paper).
pub const SYSTEM_PROMPT: &str = "If the provided instruction sequence is suboptimal, output the \
optimal and correct implementation. If the result is incorrect, revise it based on the provided \
feedback.";

/// One request to the model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prompt {
    /// The system instructions.
    pub system: String,
    /// The wrapped instruction sequence, printed as textual IR.
    pub source_text: String,
    /// Feedback from a previous failed attempt (an `opt` error message or an
    /// Alive2-style counterexample), if any.
    pub feedback: Option<String>,
    /// 0-based attempt number for this instruction sequence.
    pub attempt: usize,
}

impl Prompt {
    /// Builds the first-attempt prompt for an instruction sequence.
    pub fn initial(source_text: impl Into<String>) -> Self {
        Self {
            system: SYSTEM_PROMPT.to_string(),
            source_text: source_text.into(),
            feedback: None,
            attempt: 0,
        }
    }

    /// Builds a follow-up prompt carrying verifier feedback.
    pub fn with_feedback(&self, feedback: impl Into<String>) -> Self {
        Self {
            system: self.system.clone(),
            source_text: self.source_text.clone(),
            feedback: Some(feedback.into()),
            attempt: self.attempt + 1,
        }
    }

    /// A rough token count for the full prompt (4 characters ≈ 1 token, the
    /// usual budgeting rule of thumb).
    pub fn input_tokens(&self) -> usize {
        let chars = self.system.len()
            + self.source_text.len()
            + self.feedback.as_deref().map(str::len).unwrap_or(0);
        chars.div_ceil(4)
    }
}

/// Token usage of one completion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TokenUsage {
    /// Prompt tokens consumed.
    pub input: usize,
    /// Visible output tokens produced.
    pub output: usize,
    /// Hidden reasoning tokens produced (reasoning models only).
    pub reasoning: usize,
}

impl TokenUsage {
    /// Total billable tokens.
    pub fn total(&self) -> usize {
        self.input + self.output + self.reasoning
    }
}

/// One model response.
#[derive(Clone, Debug, PartialEq)]
pub struct Completion {
    /// The candidate function, as textual IR (possibly malformed — that is the
    /// point of the verification loop).
    pub text: String,
    /// Token accounting for this call.
    pub usage: TokenUsage,
    /// Modelled wall-clock latency of the call.
    pub latency: Duration,
    /// The monetary cost of the call in USD (zero for locally deployed models).
    pub cost_usd: f64,
}

/// A typed model-session failure: what a call can do *other* than complete.
///
/// Raw sessions (a live API transport, or the [`crate::fault`] injectors)
/// surface `Timeout`/`Backend`; the [`crate::fault::FaultPolicy`] wrapper
/// retries those and surfaces `RetriesExhausted` when the budget runs out.
/// The pipeline maps whatever arrives to a `Failed` case outcome — one bad
/// session never takes down a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The call exceeded its (modelled) deadline.
    Timeout {
        /// How long the call took before being abandoned.
        elapsed: Duration,
    },
    /// The backend failed outright (transport error, refusal, 5xx, ...).
    Backend {
        /// The backend's error message.
        message: String,
    },
    /// Every retry the [`crate::fault::FaultPolicy`] allowed also failed.
    RetriesExhausted {
        /// Total calls attempted (first try + retries).
        attempts: u32,
        /// Rendering of the last underlying error.
        last: String,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Timeout { elapsed } => {
                write!(f, "model call timed out after {:.3}s", elapsed.as_secs_f64())
            }
            SessionError::Backend { message } => write!(f, "model backend error: {message}"),
            SessionError::RetriesExhausted { attempts, last } => {
                write!(f, "model call failed after {attempts} attempt(s); last error: {last}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// One conversation between the pipeline and a model about one instruction
/// sequence: the initial proposal plus any feedback-driven retries.
///
/// Sessions carry all mutable state (RNG position, accumulated usage), so a
/// `&mut` session never needs to be shared between cases. They are spawned by
/// a [`ModelFactory`].
pub trait ModelSession {
    /// A short display name, e.g. `Gemini2.0T`.
    fn name(&self) -> &str;

    /// Proposes a candidate for the prompt.
    fn propose(&mut self, prompt: &Prompt) -> Completion;

    /// Fallible variant of [`propose`](Self::propose): the call the pipeline
    /// actually makes. Sessions with a failure mode (live transports, the
    /// [`crate::fault`] wrappers) override this; infallible sessions get this
    /// default.
    fn try_propose(&mut self, prompt: &Prompt) -> Result<Completion, SessionError> {
        Ok(self.propose(prompt))
    }
}

/// The shared, thread-safe description of a model: everything needed to spawn
/// a [`ModelSession`] for one case.
///
/// # Determinism contract
///
/// `session(round, case_index)` must be a pure function of the factory state
/// and its arguments: two sessions created with the same pair must behave
/// identically. The executor in `lpo-core` relies on this to produce
/// bit-identical results for any `--jobs` value.
pub trait ModelFactory: Send + Sync {
    /// A short display name, e.g. `Gemini2.0T`.
    fn name(&self) -> &str;

    /// The capability/pricing profile behind this factory, when one exists
    /// (simulated models always have one; a live API client may not).
    fn profile(&self) -> Option<&crate::profiles::ModelProfile> {
        None
    }

    /// Spawns the session for one case. `round` is the experiment round,
    /// `case_index` the position of the sequence in the run's input order.
    fn session(&self, round: u64, case_index: u64) -> Box<dyn ModelSession>;
}

/// A shared factory is a factory: lets long-lived drivers (the serving
/// layer, chaos harnesses) hand the engine an `Arc` while keeping their own
/// handle to inspect the factory afterwards — e.g. a
/// [`FaultyModelFactory`](crate::fault::FaultyModelFactory)'s injected-fault
/// ledger.
impl<F: ModelFactory + ?Sized> ModelFactory for std::sync::Arc<F> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn profile(&self) -> Option<&crate::profiles::ModelProfile> {
        (**self).profile()
    }

    fn session(&self, round: u64, case_index: u64) -> Box<dyn ModelSession> {
        (**self).session(round, case_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_construction_and_feedback() {
        let p = Prompt::initial("define i8 @src(i8 %x) { ret i8 %x }");
        assert_eq!(p.attempt, 0);
        assert!(p.feedback.is_none());
        assert!(p.system.contains("suboptimal"));
        let q = p.with_feedback("error: expected instruction opcode");
        assert_eq!(q.attempt, 1);
        assert!(q.feedback.as_deref().unwrap().contains("opcode"));
        assert!(q.input_tokens() > p.input_tokens());
        assert!(p.input_tokens() > 10);
    }

    #[test]
    fn token_usage_totals() {
        let u = TokenUsage { input: 100, output: 50, reasoning: 200 };
        assert_eq!(u.total(), 350);
        assert_eq!(TokenUsage::default().total(), 0);
    }
}
