//! The simulated language model.
//!
//! No network or API access is available to this reproduction, so the LLMs of
//! the paper are replaced by [`SimulatedModel`]s: a capability profile
//! ([`ModelProfile`]) plus the strategy library of [`crate::strategies`],
//! driven by a seeded RNG. A simulated model behaves the way the paper
//! describes real models behaving:
//!
//! * it only *finds* a rewrite when a matching strategy exists and a skill
//!   vs. difficulty draw succeeds (stronger and reasoning models succeed more
//!   often);
//! * even when it finds the right rewrite it sometimes emits a syntactically
//!   invalid candidate (Figure 3b) or a semantically wrong one, at
//!   profile-specific rates;
//! * given verifier feedback it retries, fixing the mistake with a
//!   profile-specific probability and a small skill bonus (reasoning models
//!   benefit most) — which is exactly what makes LPO outperform LPO⁻.
//!
//! All decisions are functions of `(model seed, round, prompt text, attempt)`,
//! so experiments are reproducible. The [`SimulatedModelFactory`] spawns one
//! [`SimulatedModel`] session per case, deriving the session seed from the
//! case index, so a parallel run is bit-identical to a serial one.

use crate::corruption::{corrupt_semantics, corrupt_syntax, SyntaxCorruption};
use crate::model::{Completion, ModelFactory, ModelSession, Prompt, TokenUsage};
use crate::profiles::ModelProfile;
use crate::strategies::{applicable, Strategy};
use lpo_ir::function::Function;
use lpo_ir::parser::parse_function;
use lpo_ir::printer::print_function;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// A deterministic, profile-driven stand-in for one of the paper's LLMs.
#[derive(Clone, Debug)]
pub struct SimulatedModel {
    profile: ModelProfile,
    seed: u64,
    round: u64,
    /// Cumulative token usage across all calls (for RQ3 cost accounting).
    total_usage: TokenUsage,
    /// Cumulative cost in USD.
    total_cost_usd: f64,
    /// Cumulative modelled latency.
    total_latency: Duration,
    calls: usize,
}

/// Mixes a case index into a base seed (the identity for index 0, so
/// single-case runs reproduce the historical serial behaviour).
fn mix_case_index(seed: u64, case_index: u64) -> u64 {
    seed ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl SimulatedModel {
    /// Creates a simulated model from a profile with the given base seed
    /// (round 0, case index 0). Prefer [`SimulatedModelFactory`] when driving
    /// more than one case.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        Self::for_case(profile, seed, 0, 0)
    }

    /// Creates the session model for one `(round, case_index)` pair — the
    /// deterministic seeding used by [`SimulatedModelFactory::session`].
    pub fn for_case(profile: ModelProfile, seed: u64, round: u64, case_index: u64) -> Self {
        Self {
            profile,
            seed: mix_case_index(seed, case_index),
            round,
            total_usage: TokenUsage::default(),
            total_cost_usd: 0.0,
            total_latency: Duration::ZERO,
            calls: 0,
        }
    }

    /// The profile this model simulates.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Total tokens consumed so far.
    pub fn total_usage(&self) -> TokenUsage {
        self.total_usage
    }

    /// Total modelled API cost so far (zero for local deployments).
    pub fn total_cost_usd(&self) -> f64 {
        self.total_cost_usd
    }

    /// Total modelled inference latency so far.
    pub fn total_latency(&self) -> Duration {
        self.total_latency
    }

    /// Number of completions produced so far.
    pub fn calls(&self) -> usize {
        self.calls
    }

    fn case_seed(&self, prompt: &Prompt) -> u64 {
        let mut h = DefaultHasher::new();
        prompt.source_text.hash(&mut h);
        self.seed.hash(&mut h);
        self.round.hash(&mut h);
        h.finish()
    }

    /// The extra difficulty a particular function adds on top of the strategy
    /// difficulty: longer windows, vectors, floating point and memory all make
    /// the rewrite harder to spot, mirroring the paper's observations about
    /// which cases weaker models miss.
    fn feature_penalty(func: &Function) -> f64 {
        let mut penalty = 0.0;
        let count = func.instruction_count();
        penalty += 0.015 * count.saturating_sub(4) as f64;
        let mut has_vector = false;
        let mut has_float = false;
        let mut has_memory = false;
        for (_, inst) in func.iter_insts() {
            has_vector |= inst.ty.is_vector();
            has_float |= inst.ty.is_float_or_float_vector();
            has_memory |= inst.kind.touches_memory();
        }
        if has_vector {
            penalty += 0.05;
        }
        if has_float {
            penalty += 0.04;
        }
        if has_memory {
            penalty += 0.05;
        }
        penalty.min(0.25)
    }

    /// The probability the model spots a rewrite of the given difficulty.
    fn find_probability(&self, effective_skill: f64, difficulty: f64) -> f64 {
        let x = 10.0 * (effective_skill - difficulty);
        (1.0 / (1.0 + (-x).exp())).clamp(0.02, 0.98)
    }

    fn finish(&mut self, prompt: &Prompt, text: String) -> Completion {
        let input = prompt.input_tokens();
        let output = text.len().div_ceil(4);
        let reasoning = self.profile.reasoning_tokens;
        let usage = TokenUsage { input, output, reasoning };
        let cost = self.profile.cost_usd(input, output + reasoning);
        let latency = Duration::from_secs_f64(self.profile.latency_seconds(input, output + reasoning));
        self.total_usage.input += input;
        self.total_usage.output += output;
        self.total_usage.reasoning += reasoning;
        self.total_cost_usd += cost;
        self.total_latency += latency;
        self.calls += 1;
        Completion { text, usage, latency, cost_usd: cost }
    }
}

impl ModelSession for SimulatedModel {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn propose(&mut self, prompt: &Prompt) -> Completion {
        let Ok(source) = parse_function(&prompt.source_text) else {
            // Garbage in, echo out — the pipeline will treat it as uninteresting.
            return self.finish(prompt, prompt.source_text.clone());
        };

        let case_seed = self.case_seed(prompt);
        let mut case_rng = StdRng::seed_from_u64(case_seed);
        let mut attempt_rng = StdRng::seed_from_u64(case_seed ^ (prompt.attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));

        // 1. Does the model spot a rewrite at all? (Case-level decision: it
        //    does not flip between attempts for the same sequence.)
        let candidates: Vec<(Strategy, Function)> = applicable(&source);
        let penalty = Self::feature_penalty(&source);
        let mut effective_skill = self.profile.skill;
        if prompt.attempt > 0 && prompt.feedback.is_some() {
            effective_skill += self.profile.feedback_skill_bonus;
        }
        let chosen = candidates.into_iter().find(|(s, _)| {
            let p = self.find_probability(effective_skill, s.difficulty + penalty);
            case_rng.gen::<f64>() < p
        });
        let Some((_, rewritten)) = chosen else {
            // Nothing found: echo the input (an uninteresting candidate).
            return self.finish(prompt, print_function(&source));
        };
        let correct_text = print_function(&rewritten);

        // 2. Decide whether this attempt's output is clean or corrupted.
        let emit_clean = if prompt.attempt == 0 || prompt.feedback.is_none() {
            let syntax = attempt_rng.gen::<f64>() < self.profile.syntax_error_rate;
            let semantic = attempt_rng.gen::<f64>() < self.profile.wrong_rewrite_rate;
            if syntax {
                let kind = match attempt_rng.gen_range(0..3) {
                    0 => SyntaxCorruption::BareIntrinsicOpcode,
                    1 => SyntaxCorruption::MisspelledOpcode,
                    _ => SyntaxCorruption::MissingType,
                };
                let broken = corrupt_syntax(&correct_text, kind, &mut attempt_rng);
                return self.finish(prompt, broken);
            }
            if semantic {
                if let Some(broken) = corrupt_semantics(&rewritten, &mut attempt_rng) {
                    return self.finish(prompt, broken);
                }
            }
            true
        } else {
            // A retry with feedback: fix the earlier mistake with the profile's
            // fix rate, otherwise make another (semantic) mistake.
            if attempt_rng.gen::<f64>() < self.profile.feedback_fix_rate {
                true
            } else if let Some(broken) = corrupt_semantics(&rewritten, &mut attempt_rng) {
                return self.finish(prompt, broken);
            } else {
                true
            }
        };
        let _ = emit_clean;
        self.finish(prompt, correct_text)
    }
}

/// The [`ModelFactory`] for simulated models: an immutable
/// `(profile, base seed)` pair that spawns one [`SimulatedModel`] session per
/// case.
///
/// The session for `(round, case_index)` carries the seed
/// `base_seed ⊕ (case_index · φ64)`, so every case draws from an independent
/// deterministic stream and case index 0 reproduces the historical
/// single-model serial runs exactly.
#[derive(Clone, Debug)]
pub struct SimulatedModelFactory {
    profile: ModelProfile,
    seed: u64,
}

impl SimulatedModelFactory {
    /// Creates a factory for the given profile and base seed.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// The concrete session model (the trait method boxes this).
    pub fn session_model(&self, round: u64, case_index: u64) -> SimulatedModel {
        SimulatedModel::for_case(self.profile.clone(), self.seed, round, case_index)
    }
}

impl ModelFactory for SimulatedModelFactory {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn profile(&self) -> Option<&ModelProfile> {
        Some(&self.profile)
    }

    fn session(&self, round: u64, case_index: u64) -> Box<dyn ModelSession> {
        Box::new(self.session_model(round, case_index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    const CLAMP: &str = "define i8 @src(i32 %0) {\n\
        %2 = icmp slt i32 %0, 0\n\
        %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
        %4 = trunc nuw i32 %3 to i8\n\
        %5 = select i1 %2, i8 0, i8 %4\n\
        ret i8 %5\n}";

    const BORING: &str = "define i32 @f(i32 %x, i32 %y) {\n\
        %a = mul i32 %x, %y\n\
        %b = add i32 %a, %y\n\
        ret i32 %b\n}";

    #[test]
    fn strong_models_find_the_clamp_rewrite_most_rounds() {
        let mut found = 0;
        for round in 0..20 {
            let mut model = SimulatedModel::for_case(profiles::gemini2_0t(), 7, round, 0);
            let completion = model.propose(&Prompt::initial(CLAMP));
            if completion.text.contains("llvm.smax") {
                found += 1;
            }
        }
        assert!(found >= 12, "Gemini2.0T found the rewrite only {found}/20 times");
    }

    #[test]
    fn weak_models_rarely_find_it() {
        let mut found = 0;
        for round in 0..20 {
            let mut model = SimulatedModel::for_case(profiles::gemma3(), 7, round, 0);
            let completion = model.propose(&Prompt::initial(CLAMP));
            if completion.text.contains("llvm.smax") {
                found += 1;
            }
        }
        assert!(found <= 6, "Gemma3 found the rewrite {found}/20 times, expected rarely");
    }

    #[test]
    fn boring_input_is_echoed() {
        let mut model = SimulatedModel::new(profiles::gemini2_0t(), 1);
        let completion = model.propose(&Prompt::initial(BORING));
        // No strategy applies, so the model returns an equivalent of the input.
        assert!(completion.text.contains("mul i32"));
        assert!(completion.text.contains("add i32"));
    }

    #[test]
    fn determinism_per_round_and_variation_across_rounds() {
        let mut a = SimulatedModel::for_case(profiles::llama3_3(), 3, 1, 0);
        let mut b = SimulatedModel::for_case(profiles::llama3_3(), 3, 1, 0);
        assert_eq!(a.propose(&Prompt::initial(CLAMP)).text, b.propose(&Prompt::initial(CLAMP)).text);

        // Across rounds the outcome is allowed to differ (non-determinism of
        // the real models, reproduced by reseeding).
        let mut texts = std::collections::HashSet::new();
        for round in 0..8 {
            let mut m = SimulatedModel::for_case(profiles::llama3_3(), 3, round, 0);
            texts.insert(m.propose(&Prompt::initial(CLAMP)).text);
        }
        assert!(texts.len() > 1, "outcomes should vary across rounds");
    }

    #[test]
    fn feedback_retry_can_fix_a_broken_first_attempt() {
        // Find a round where the first attempt is not clean, then check that a
        // feedback retry produces the correct candidate for a reasoning model.
        let mut fixed = 0;
        let mut broken_rounds = 0;
        for round in 0..40 {
            let mut model = SimulatedModel::for_case(profiles::gemini2_0t(), 11, round, 0);
            let first = model.propose(&Prompt::initial(CLAMP));
            let first_ok = lpo_ir::parser::parse_function(&first.text).is_ok()
                && first.text.contains("llvm.smax");
            if first_ok || !first.text.contains("smax") {
                continue; // clean, or not found at all
            }
            broken_rounds += 1;
            let retry_prompt = Prompt::initial(CLAMP).with_feedback("error: expected instruction opcode");
            let second = model.propose(&retry_prompt);
            if lpo_ir::parser::parse_function(&second.text).is_ok() && second.text.contains("llvm.smax") {
                fixed += 1;
            }
        }
        if broken_rounds > 0 {
            assert!(fixed > 0, "feedback never fixed any of {broken_rounds} broken attempts");
        }
    }

    #[test]
    fn factory_sessions_are_deterministic_and_independent() {
        let factory = SimulatedModelFactory::new(profiles::gemini2_0t(), 7);
        assert_eq!(factory.name(), "Gemini2.0T");
        assert!(ModelFactory::profile(&factory).is_some());

        // Same (round, case_index) → byte-identical output.
        let a = factory.session(3, 5).propose(&Prompt::initial(CLAMP)).text;
        let b = factory.session(3, 5).propose(&Prompt::initial(CLAMP)).text;
        assert_eq!(a, b);

        // Case index 0 reproduces the historical single-model behaviour.
        let legacy = SimulatedModel::for_case(profiles::gemini2_0t(), 7, 3, 0)
            .propose(&Prompt::initial(CLAMP))
            .text;
        assert_eq!(factory.session(3, 0).propose(&Prompt::initial(CLAMP)).text, legacy);

        // Different case indices draw from independent streams: over several
        // rounds at least one (round, index) pair must diverge.
        let diverges = (0..8).any(|round| {
            let x = factory.session(round, 0).propose(&Prompt::initial(CLAMP)).text;
            let y = factory.session(round, 1).propose(&Prompt::initial(CLAMP)).text;
            x != y
        });
        assert!(diverges, "case-index seeding never changed an outcome");
    }

    #[test]
    fn accounting_accumulates() {
        let mut model = SimulatedModel::new(profiles::gemini2_5(), 5);
        for _ in 0..3 {
            let _ = model.propose(&Prompt::initial(CLAMP));
        }
        assert_eq!(model.calls(), 3);
        assert!(model.total_usage().input > 0);
        assert!(model.total_usage().output > 0);
        assert!(model.total_cost_usd() > 0.0);
        assert!(model.total_latency() > Duration::ZERO);
        // Local models cost nothing.
        let mut local = SimulatedModel::new(profiles::llama3_3(), 5);
        let _ = local.propose(&Prompt::initial(CLAMP));
        assert_eq!(local.total_cost_usd(), 0.0);
        assert_eq!(local.name(), "Llama3.3");
        assert_eq!(local.profile().version, "llama3.3:70b");
    }
}
