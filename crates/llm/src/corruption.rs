//! Hallucination models: the ways a simulated LLM's candidate can be wrong.
//!
//! The paper's feedback loop exists because LLM output is unreliable in two
//! distinct ways: it may be *syntactically* invalid (caught by `opt`) or
//! *semantically* wrong (caught by Alive2). Both are reproduced here as
//! deterministic corruptions of an otherwise-correct candidate, chosen by the
//! simulated model's seeded RNG.

use lpo_ir::constant::Constant;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, ICmpPred, InstKind, Value};
use lpo_ir::printer::print_function;
use rand::rngs::StdRng;
use rand::Rng;

/// The kinds of syntax mistakes the simulated models make.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyntaxCorruption {
    /// Spell an intrinsic as a bare opcode, e.g. `%r = smax <4 x i32> %a, %b`
    /// (the exact mistake of Figure 3b in the paper).
    BareIntrinsicOpcode,
    /// Misspell an opcode (`addd`, `mull`, …).
    MisspelledOpcode,
    /// Drop the type from one operand list.
    MissingType,
}

/// Applies a syntax corruption to candidate text, returning the broken text.
/// If the requested corruption has nothing to attach to (e.g. no intrinsic
/// call for [`SyntaxCorruption::BareIntrinsicOpcode`]), it falls back to
/// misspelling an opcode so the result is always invalid.
pub fn corrupt_syntax(text: &str, kind: SyntaxCorruption, _rng: &mut StdRng) -> String {
    match kind {
        SyntaxCorruption::BareIntrinsicOpcode => {
            if let Some(broken) = bare_intrinsic(text) {
                return broken;
            }
            corrupt_syntax(text, SyntaxCorruption::MisspelledOpcode, _rng)
        }
        SyntaxCorruption::MisspelledOpcode => {
            for opcode in ["add ", "mul ", "select ", "icmp ", "trunc ", "call ", "load ", "xor "] {
                if text.contains(opcode) {
                    let broken = opcode.trim_end().to_string() + "q ";
                    return text.replacen(opcode, &broken, 1);
                }
            }
            text.replacen("ret ", "retq ", 1)
        }
        SyntaxCorruption::MissingType => {
            for ty in [" i32 ", " i64 ", " i8 ", " i16 ", " double ", " float "] {
                if let Some(pos) = text.find(&format!("={}", "")) {
                    let _ = pos;
                }
                // Remove the first occurrence of the type after an '=' sign.
                if let Some(eq) = text.find("= ") {
                    let tail = &text[eq..];
                    if tail.contains(ty) {
                        let mut out = String::with_capacity(text.len());
                        out.push_str(&text[..eq]);
                        out.push_str(&tail.replacen(ty, " ", 1));
                        return out;
                    }
                }
            }
            corrupt_syntax(text, SyntaxCorruption::MisspelledOpcode, _rng)
        }
    }
}

/// Rewrites the first intrinsic call into a bare (invalid) opcode, mirroring
/// the Gemini2.0T mistake shown in Figure 3b of the paper.
fn bare_intrinsic(text: &str) -> Option<String> {
    let mut out = Vec::new();
    let mut done = false;
    for line in text.lines() {
        if !done {
            if let Some(call_pos) = line.find("call ") {
                if let Some(at) = line.find("@llvm.") {
                    // `%r = call <ty> @llvm.smax.v4i32(<args>)` → `%r = smax <args>`
                    let short = line[at + 6..]
                        .split(['.', '('])
                        .next()
                        .unwrap_or("smax")
                        .to_string();
                    let args = line[line.find('(').unwrap_or(line.len() - 1) + 1..]
                        .trim_end()
                        .trim_end_matches(')');
                    let prefix = &line[..call_pos];
                    out.push(format!("{prefix}{short} {args}"));
                    done = true;
                    continue;
                }
            }
        }
        out.push(line.to_string());
    }
    if done {
        Some(out.join("\n"))
    } else {
        None
    }
}

/// Applies a semantic corruption: the function still parses but computes the
/// wrong thing (or is more poisonous), so the translation validator rejects it
/// with a counterexample. Returns `None` if no corruption site was found.
pub fn corrupt_semantics(func: &Function, rng: &mut StdRng) -> Option<String> {
    let mut broken = func.clone();
    let ids: Vec<_> = broken.iter_inst_ids().collect();
    // Try a few times to find a corruptible instruction.
    for _ in 0..8 {
        if ids.is_empty() {
            return None;
        }
        let id = ids[rng.gen_range(0..ids.len())];
        let inst = broken.inst_mut(id);
        match &mut inst.kind {
            InstKind::Binary { op, rhs, flags, .. } => {
                match rng.gen_range(0..3) {
                    0 => {
                        // Perturb a constant operand.
                        if let Value::Const(Constant::Int(v)) = rhs {
                            *v = v.add(&lpo_ir::apint::ApInt::one(v.width()));
                            return Some(print_function(&broken));
                        }
                    }
                    1 => {
                        // Claim a wrap flag that is not justified.
                        if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl)
                            && !flags.nuw
                        {
                            flags.nuw = true;
                            return Some(print_function(&broken));
                        }
                    }
                    _ => {
                        // Change the opcode to a near miss.
                        let new_op = match *op {
                            BinOp::Add => BinOp::Sub,
                            BinOp::Sub => BinOp::Add,
                            BinOp::And => BinOp::Or,
                            BinOp::Or => BinOp::Xor,
                            BinOp::Shl => BinOp::LShr,
                            other => other,
                        };
                        if new_op != *op {
                            *op = new_op;
                            return Some(print_function(&broken));
                        }
                    }
                }
            }
            InstKind::ICmp { pred, .. } => {
                *pred = if *pred == ICmpPred::Slt { ICmpPred::Sle } else { pred.inverted() };
                return Some(print_function(&broken));
            }
            InstKind::Select { on_true, on_false, .. } => {
                std::mem::swap(on_true, on_false);
                return Some(print_function(&broken));
            }
            InstKind::Call { args, .. } if args.len() >= 2 => {
                if let Value::Const(Constant::Int(v)) = &mut args[1] {
                    if v.width() > 1 {
                        *v = v.sub(&lpo_ir::apint::ApInt::one(v.width()));
                        return Some(print_function(&broken));
                    }
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;
    use lpo_tv::refine::verify_refinement;
    use rand::SeedableRng;

    const CANDIDATE: &str = "define <4 x i8> @src(i64 %a0, ptr %a1) {\n\
        %0 = getelementptr inbounds nuw i32, ptr %a1, i64 %a0\n\
        %wide.load = load <4 x i32>, ptr %0, align 4\n\
        %smax = call <4 x i32> @llvm.smax.v4i32(<4 x i32> %wide.load, <4 x i32> zeroinitializer)\n\
        %smin = call <4 x i32> @llvm.umin.v4i32(<4 x i32> %smax, <4 x i32> splat (i32 255))\n\
        %r = trunc nuw <4 x i32> %smin to <4 x i8>\n\
        ret <4 x i8> %r\n}";

    #[test]
    fn bare_intrinsic_reproduces_figure_3b() {
        let mut rng = StdRng::seed_from_u64(1);
        let broken = corrupt_syntax(CANDIDATE, SyntaxCorruption::BareIntrinsicOpcode, &mut rng);
        assert!(broken.contains("%smax = smax <4 x i32>"));
        let err = parse_function(&broken).unwrap_err();
        assert_eq!(err.message, "expected instruction opcode");
    }

    #[test]
    fn other_syntax_corruptions_fail_to_parse() {
        let mut rng = StdRng::seed_from_u64(2);
        for kind in [SyntaxCorruption::MisspelledOpcode, SyntaxCorruption::MissingType] {
            let broken = corrupt_syntax(CANDIDATE, kind, &mut rng);
            assert!(parse_function(&broken).is_err(), "{kind:?} should not parse:\n{broken}");
        }
    }

    #[test]
    fn syntax_corruption_falls_back_when_no_intrinsic_exists() {
        let simple = "define i32 @f(i32 %x) {\n %r = add i32 %x, 1\n ret i32 %r\n}";
        let mut rng = StdRng::seed_from_u64(3);
        let broken = corrupt_syntax(simple, SyntaxCorruption::BareIntrinsicOpcode, &mut rng);
        assert!(parse_function(&broken).is_err());
    }

    #[test]
    fn semantic_corruption_parses_but_fails_verification() {
        let src = parse_function(
            "define i8 @src(i32 %0) {\n\
             %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
             %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             ret i8 %4\n}",
        )
        .unwrap();
        let mut seen_rejection = false;
        for seed in 0..12 {
            let mut rng = StdRng::seed_from_u64(seed);
            if let Some(text) = corrupt_semantics(&src, &mut rng) {
                let candidate = parse_function(&text).expect("semantic corruption still parses");
                if !verify_refinement(&src, &candidate).is_correct() {
                    seen_rejection = true;
                    break;
                }
            }
        }
        assert!(seen_rejection, "at least one semantic corruption must be rejected by the validator");
    }
}
