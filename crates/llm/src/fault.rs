//! The failure model for model sessions: a retry/deadline policy wrapper and
//! a fault-injecting decorator.
//!
//! Real LLM transports fail partially and nondeterministically — calls hang,
//! backends 5xx, models emit garbage, client code panics. This module gives
//! the reproduction both halves of that story:
//!
//! * [`FaultPolicy`] / [`FaultPolicyFactory`] wrap any [`ModelFactory`] with
//!   a per-call deadline, bounded retries and deterministic *seeded* backoff
//!   (never wall-clock randomness — runs must stay reproducible), surfacing
//!   a typed [`SessionError`] when the budget is exhausted;
//! * [`FaultyModelFactory`] decorates a factory with seeded injection of
//!   timeouts, garbage output, backend errors and panics at configurable
//!   [`FaultRates`] — the chaos half that `tests/fault_injection.rs` and the
//!   CI `chaos-smoke` job drive to prove the engine degrades gracefully.
//!
//! # Determinism contract
//!
//! Every decision both wrappers make is a pure function of their seed and
//! `(round, case_index)`: which calls fault, what the backoff costs, what the
//! garbage text is. Two runs with the same seeds fault identically at any
//! `--jobs` / `--shard-size`, and cases that drew no fault produce reports
//! byte-identical to an entirely fault-free run. Backoff is *modelled* (it
//! feeds the completion's latency accounting) rather than slept — the same
//! treatment the simulated models give inference latency.

use crate::model::{Completion, ModelFactory, ModelSession, Prompt, SessionError, TokenUsage};
use crate::profiles::ModelProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Mixes `(seed, round, case_index)` into one session seed.
fn session_seed(seed: u64, round: u64, case_index: u64) -> u64 {
    seed ^ round.wrapping_mul(0xa24b_aed4_963e_e407)
        ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

// ---------------------------------------------------------------------------
// FaultPolicy: deadline + bounded retries + deterministic backoff
// ---------------------------------------------------------------------------

/// How a [`FaultPolicyFactory`] session treats failures of the session it
/// wraps.
#[derive(Clone, Copy, Debug)]
pub struct FaultPolicy {
    /// Per-call deadline on the *modelled* latency: a completion slower than
    /// this counts as a timeout (retryable), mirroring a client-side request
    /// deadline.
    pub deadline: Duration,
    /// Retries allowed after the first call (`0` = fail fast).
    pub max_retries: u32,
    /// Base of the exponential backoff charged (to modelled latency) before
    /// retry `n`: `backoff_base * 2^(n-1)`, jittered.
    pub backoff_base: Duration,
    /// Seed of the backoff jitter. Deterministic by design: the jitter for
    /// retry `n` of case `c` in round `r` depends only on `(seed, r, c, n)`.
    pub seed: u64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(120),
            max_retries: 2,
            backoff_base: Duration::from_millis(250),
            seed: 0x5eed_bac0_ff5e_e7e5,
        }
    }
}

/// Counters a [`FaultPolicyFactory`] accumulates across all its sessions.
#[derive(Debug, Default)]
pub struct PolicyCounters {
    timeouts: AtomicUsize,
    backend_errors: AtomicUsize,
    retries: AtomicUsize,
    exhausted: AtomicUsize,
}

/// A copyable snapshot of [`PolicyCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolicySnapshot {
    /// Calls that exceeded the deadline (or surfaced `Timeout` themselves).
    pub timeouts: usize,
    /// Calls that surfaced a backend error.
    pub backend_errors: usize,
    /// Retries performed.
    pub retries: usize,
    /// Sessions whose whole retry budget failed.
    pub exhausted: usize,
}

impl PolicyCounters {
    fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot {
            timeouts: self.timeouts.load(Ordering::Relaxed),
            backend_errors: self.backend_errors.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }
}

/// Wraps a [`ModelFactory`] so every spawned session enforces a
/// [`FaultPolicy`]. Composes outside a [`FaultyModelFactory`] to retry its
/// injected (retryable) faults.
pub struct FaultPolicyFactory<F> {
    inner: F,
    policy: FaultPolicy,
    counters: Arc<PolicyCounters>,
}

impl<F: ModelFactory> FaultPolicyFactory<F> {
    /// Decorates `inner` with `policy`.
    pub fn new(inner: F, policy: FaultPolicy) -> Self {
        Self { inner, policy, counters: Arc::new(PolicyCounters::default()) }
    }

    /// Failure accounting across every session spawned so far.
    pub fn counters(&self) -> PolicySnapshot {
        self.counters.snapshot()
    }
}

impl<F: ModelFactory> ModelFactory for FaultPolicyFactory<F> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn profile(&self) -> Option<&ModelProfile> {
        self.inner.profile()
    }

    fn session(&self, round: u64, case_index: u64) -> Box<dyn ModelSession> {
        Box::new(PolicySession {
            inner: self.inner.session(round, case_index),
            policy: self.policy,
            rng: StdRng::seed_from_u64(session_seed(self.policy.seed, round, case_index)),
            counters: self.counters.clone(),
        })
    }
}

/// The per-case session a [`FaultPolicyFactory`] spawns.
pub struct PolicySession {
    inner: Box<dyn ModelSession>,
    policy: FaultPolicy,
    rng: StdRng,
    counters: Arc<PolicyCounters>,
}

impl PolicySession {
    /// The jittered exponential backoff charged before retry `n` (1-based).
    fn backoff(&mut self, retry: u32) -> Duration {
        let exp = 1u32 << (retry - 1).min(16);
        let jitter: f64 = self.rng.gen();
        Duration::from_secs_f64(self.policy.backoff_base.as_secs_f64() * exp as f64 * (1.0 + jitter))
    }
}

impl ModelSession for PolicySession {
    fn name(&self) -> &str {
        self.inner.name()
    }

    /// Infallible entry point; panics when the policy exhausts its retries.
    /// The pipeline drives sessions through
    /// [`try_propose`](ModelSession::try_propose) instead, and the execution
    /// engine's per-case `catch_unwind` contains this panic if something else
    /// calls it.
    fn propose(&mut self, prompt: &Prompt) -> Completion {
        match self.try_propose(prompt) {
            Ok(completion) => completion,
            Err(error) => panic!("PolicySession::propose: {error}"),
        }
    }

    fn try_propose(&mut self, prompt: &Prompt) -> Result<Completion, SessionError> {
        let attempts = 1 + self.policy.max_retries;
        // Modelled time spent waiting between retries; charged to the
        // successful completion's latency so cost accounting stays honest.
        let mut penalty = Duration::ZERO;
        let mut last: Option<SessionError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                penalty += self.backoff(attempt);
            }
            match self.inner.try_propose(prompt) {
                Ok(mut completion) => {
                    if completion.latency > self.policy.deadline {
                        self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        last = Some(SessionError::Timeout { elapsed: completion.latency });
                        continue;
                    }
                    completion.latency += penalty;
                    return Ok(completion);
                }
                Err(error) => {
                    match &error {
                        SessionError::Timeout { .. } => {
                            self.counters.timeouts.fetch_add(1, Ordering::Relaxed)
                        }
                        _ => self.counters.backend_errors.fetch_add(1, Ordering::Relaxed),
                    };
                    last = Some(error);
                }
            }
        }
        self.counters.exhausted.fetch_add(1, Ordering::Relaxed);
        let last = last.map(|e| e.to_string()).unwrap_or_else(|| "no attempt ran".to_string());
        Err(SessionError::RetriesExhausted { attempts, last })
    }
}

// ---------------------------------------------------------------------------
// FaultyModelFactory: seeded chaos injection
// ---------------------------------------------------------------------------

/// Per-call fault probabilities of a [`FaultyModelFactory`]. Independent
/// rates; their sum is the total per-call fault probability (keep it < 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultRates {
    /// Probability the call times out ([`SessionError::Timeout`]).
    pub timeout: f64,
    /// Probability the call returns unparseable garbage text.
    pub garbage: f64,
    /// Probability the call fails with a backend error
    /// ([`SessionError::Backend`]).
    pub error: f64,
    /// Probability the call panics (exercising the engine's per-case
    /// `catch_unwind`).
    pub panic: f64,
}

impl FaultRates {
    /// An even split of `total` across the four fault kinds.
    pub fn uniform(total: f64) -> Self {
        let quarter = total / 4.0;
        Self { timeout: quarter, garbage: quarter, error: quarter, panic: quarter }
    }

    /// The total per-call fault probability.
    pub fn total(&self) -> f64 {
        self.timeout + self.garbage + self.error + self.panic
    }
}

/// Counters of faults actually injected.
#[derive(Debug, Default)]
struct FaultCounters {
    timeouts: AtomicUsize,
    garbage: AtomicUsize,
    errors: AtomicUsize,
    panics: AtomicUsize,
}

/// A copyable snapshot of the faults a [`FaultyModelFactory`] injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Injected timeouts.
    pub timeouts: usize,
    /// Injected garbage completions.
    pub garbage: usize,
    /// Injected backend errors.
    pub errors: usize,
    /// Injected panics.
    pub panics: usize,
}

impl FaultSnapshot {
    /// Total faults injected.
    pub fn total(&self) -> usize {
        self.timeouts + self.garbage + self.errors + self.panics
    }
}

/// Decorates a [`ModelFactory`] with seeded fault injection: the chaos half
/// of the fault-injection harness.
///
/// Which calls fault is a pure function of `(fault seed, round, case_index,
/// call number)`, so a chaotic run is exactly reproducible and the set of
/// *unfaulted* cases — which [`faulted_cases`](Self::faulted_cases) exposes —
/// behaves byte-identically to a run with no decorator at all.
pub struct FaultyModelFactory<F> {
    inner: F,
    rates: FaultRates,
    seed: u64,
    counters: Arc<FaultCounters>,
    faulted: Arc<Mutex<BTreeSet<(u64, u64)>>>,
}

impl<F: ModelFactory> FaultyModelFactory<F> {
    /// Decorates `inner`, injecting faults at `rates`, seeded by `seed`.
    pub fn new(inner: F, rates: FaultRates, seed: u64) -> Self {
        Self {
            inner,
            rates,
            seed,
            counters: Arc::new(FaultCounters::default()),
            faulted: Arc::new(Mutex::new(BTreeSet::new())),
        }
    }

    /// The `(round, case_index)` pairs whose session injected at least one
    /// fault so far. Cases *not* in this set saw a pristine model and must
    /// report byte-identically to a fault-free run.
    pub fn faulted_cases(&self) -> Vec<(u64, u64)> {
        self.faulted.lock().expect("fault set poisoned").iter().copied().collect()
    }

    /// What was injected so far.
    pub fn injected(&self) -> FaultSnapshot {
        FaultSnapshot {
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            garbage: self.counters.garbage.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
        }
    }
}

impl<F: ModelFactory> ModelFactory for FaultyModelFactory<F> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn profile(&self) -> Option<&ModelProfile> {
        self.inner.profile()
    }

    fn session(&self, round: u64, case_index: u64) -> Box<dyn ModelSession> {
        Box::new(FaultySession {
            inner: self.inner.session(round, case_index),
            rates: self.rates,
            rng: StdRng::seed_from_u64(session_seed(self.seed, round, case_index)),
            round,
            case_index,
            counters: self.counters.clone(),
            faulted: self.faulted.clone(),
        })
    }
}

/// The per-case session a [`FaultyModelFactory`] spawns.
pub struct FaultySession {
    inner: Box<dyn ModelSession>,
    rates: FaultRates,
    rng: StdRng,
    round: u64,
    case_index: u64,
    counters: Arc<FaultCounters>,
    faulted: Arc<Mutex<BTreeSet<(u64, u64)>>>,
}

impl FaultySession {
    fn mark_faulted(&self) {
        self.faulted.lock().expect("fault set poisoned").insert((self.round, self.case_index));
    }
}

impl ModelSession for FaultySession {
    fn name(&self) -> &str {
        self.inner.name()
    }

    /// Infallible entry point; injected errors surface as panics here (the
    /// engine's per-case `catch_unwind` contains them). The pipeline drives
    /// sessions through [`try_propose`](ModelSession::try_propose).
    fn propose(&mut self, prompt: &Prompt) -> Completion {
        match self.try_propose(prompt) {
            Ok(completion) => completion,
            Err(error) => panic!("FaultySession::propose: {error}"),
        }
    }

    fn try_propose(&mut self, prompt: &Prompt) -> Result<Completion, SessionError> {
        let draw: f64 = self.rng.gen();
        let r = self.rates;
        if draw < r.panic {
            self.mark_faulted();
            self.counters.panics.fetch_add(1, Ordering::Relaxed);
            panic!(
                "injected model fault: panic (round {}, case {})",
                self.round, self.case_index
            );
        }
        if draw < r.panic + r.timeout {
            self.mark_faulted();
            self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            return Err(SessionError::Timeout { elapsed: Duration::from_secs(30) });
        }
        if draw < r.panic + r.timeout + r.error {
            self.mark_faulted();
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
            return Err(SessionError::Backend {
                message: format!(
                    "injected backend error (round {}, case {})",
                    self.round, self.case_index
                ),
            });
        }
        if draw < r.total() {
            self.mark_faulted();
            self.counters.garbage.fetch_add(1, Ordering::Relaxed);
            // Deterministic junk that can never parse as IR.
            let junk: u64 = self.rng.gen();
            return Ok(Completion {
                text: format!("<<injected garbage {junk:016x}>>"),
                usage: TokenUsage { input: prompt.input_tokens(), output: 4, reasoning: 0 },
                latency: Duration::from_millis(300),
                cost_usd: 0.0,
            });
        }
        self.inner.try_propose(prompt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::{gemini2_0t, SimulatedModelFactory};

    fn prompt() -> Prompt {
        Prompt::initial(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
        )
    }

    #[test]
    fn policy_passes_clean_calls_through_unchanged() {
        let plain = SimulatedModelFactory::new(gemini2_0t(), 42);
        let wrapped = FaultPolicyFactory::new(
            SimulatedModelFactory::new(gemini2_0t(), 42),
            FaultPolicy::default(),
        );
        let p = prompt();
        let a = plain.session(0, 0).try_propose(&p).unwrap();
        let b = wrapped.session(0, 0).try_propose(&p).unwrap();
        assert_eq!(a, b, "a clean call pays no policy tax");
        assert_eq!(wrapped.counters(), PolicySnapshot::default());
    }

    #[test]
    fn policy_retries_injected_faults_and_charges_backoff() {
        // Inject errors on (almost) every call; the policy's budget exhausts.
        let always_err = FaultyModelFactory::new(
            SimulatedModelFactory::new(gemini2_0t(), 42),
            FaultRates { error: 1.0, ..FaultRates::default() },
            7,
        );
        let policy = FaultPolicy { max_retries: 2, ..FaultPolicy::default() };
        let wrapped = FaultPolicyFactory::new(always_err, policy);
        let err = wrapped.session(0, 0).try_propose(&prompt()).unwrap_err();
        match err {
            SessionError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.contains("injected backend error"), "last: {last}");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        let counters = wrapped.counters();
        assert_eq!(counters.retries, 2);
        assert_eq!(counters.backend_errors, 3);
        assert_eq!(counters.exhausted, 1);
    }

    #[test]
    fn policy_deadline_turns_slow_calls_into_timeouts() {
        let policy = FaultPolicy { deadline: Duration::from_nanos(1), ..FaultPolicy::default() };
        let wrapped =
            FaultPolicyFactory::new(SimulatedModelFactory::new(gemini2_0t(), 42), policy);
        let err = wrapped.session(0, 0).try_propose(&prompt()).unwrap_err();
        assert!(matches!(err, SessionError::RetriesExhausted { .. }), "got {err}");
        assert!(wrapped.counters().timeouts >= 1);
    }

    #[test]
    fn backoff_is_deterministic_for_a_session_seed() {
        let make = || {
            let always_err = FaultyModelFactory::new(
                SimulatedModelFactory::new(gemini2_0t(), 42),
                FaultRates { error: 1.0, ..FaultRates::default() },
                7,
            );
            FaultPolicyFactory::new(always_err, FaultPolicy::default())
        };
        let a = make().session(3, 5).try_propose(&prompt()).unwrap_err();
        let b = make().session(3, 5).try_propose(&prompt()).unwrap_err();
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_factory_is_transparent_for_unfaulted_cases() {
        let plain = SimulatedModelFactory::new(gemini2_0t(), 42);
        let chaotic =
            FaultyModelFactory::new(SimulatedModelFactory::new(gemini2_0t(), 42), FaultRates::uniform(0.4), 0xc4a05);
        let p = prompt();
        for case in 0..32u64 {
            let chaos_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                chaotic.session(0, case).try_propose(&p)
            }));
            if chaotic.faulted_cases().contains(&(0, case)) {
                continue;
            }
            let clean = plain.session(0, case).try_propose(&p).unwrap();
            let chaos = chaos_result.expect("unfaulted call cannot panic").unwrap();
            assert_eq!(clean, chaos, "case {case} drew no fault but diverged");
        }
        assert!(chaotic.injected().total() > 0, "0.4 fault rate over 32 calls injected nothing");
    }

    #[test]
    fn injected_garbage_never_parses() {
        let chaotic = FaultyModelFactory::new(
            SimulatedModelFactory::new(gemini2_0t(), 42),
            FaultRates { garbage: 1.0, ..FaultRates::default() },
            1,
        );
        let completion = chaotic.session(0, 0).try_propose(&prompt()).unwrap();
        assert!(lpo_ir::parser::parse_function(&completion.text).is_err());
        assert_eq!(chaotic.injected().garbage, 1);
    }

    #[test]
    fn fault_rate_helpers() {
        let rates = FaultRates::uniform(0.1);
        assert!((rates.total() - 0.1).abs() < 1e-12);
        assert!((rates.panic - 0.025).abs() < 1e-12);
        assert_eq!(FaultRates::default().total(), 0.0);
    }
}
