//! # lpo-llm
//!
//! The "LLM-based optimizer" component of the LPO pipeline, reproduced without
//! network access: a [`model::ModelFactory`]/[`model::ModelSession`] pair the
//! pipeline talks to, the capability [`profiles`] of the seven models the
//! paper evaluates (Table 1), a [`strategies`] library encoding the
//! optimization knowledge those models exhibit, the [`corruption`] models for
//! the hallucinations the verification loop exists to catch, and the
//! [`simulated::SimulatedModel`] that ties them together.
//!
//! A factory is `Send + Sync` and describes one model; it spawns a cheap
//! mutable [`model::ModelSession`] per case, seeded deterministically from
//! `(round, case_index)`, which is what lets the discovery engine in
//! `lpo-core` fan cases out over worker threads while staying bit-identical
//! to a serial run.
//!
//! ```
//! use lpo_llm::prelude::*;
//!
//! let factory = SimulatedModelFactory::new(gemini2_0t(), 42);
//! let mut model = factory.session(0, 0);
//! let prompt = Prompt::initial(
//!     "define i8 @src(i32 %0) {\n\
//!      %2 = icmp slt i32 %0, 0\n\
//!      %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
//!      %4 = trunc nuw i32 %3 to i8\n\
//!      %5 = select i1 %2, i8 0, i8 %4\n\
//!      ret i8 %5\n}",
//! );
//! let completion = model.propose(&prompt);
//! assert!(!completion.text.is_empty());
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

pub mod corruption;
pub mod fault;
pub mod model;
pub mod profiles;
pub mod simulated;
pub mod strategies;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::corruption::{corrupt_semantics, corrupt_syntax, SyntaxCorruption};
    pub use crate::fault::{
        FaultPolicy, FaultPolicyFactory, FaultRates, FaultSnapshot, FaultyModelFactory,
        PolicySnapshot,
    };
    pub use crate::model::{
        Completion, ModelFactory, ModelSession, Prompt, SessionError, TokenUsage, SYSTEM_PROMPT,
    };
    pub use crate::profiles::{
        all_models, by_name, gemini2_0, gemini2_0t, gemini2_5, gemma3, gpt4_1, llama3_3, o4_mini,
        rq1_models, Deployment, ModelProfile,
    };
    pub use crate::simulated::{SimulatedModel, SimulatedModelFactory};
    pub use crate::strategies::{applicable, apply_strategy, first_applicable, library, Strategy};
}
