//! Capability profiles of the models the paper evaluates (Table 1).
//!
//! A profile captures everything the reproduction needs to *simulate* a model:
//! how good it is at spotting rewrites (`skill`), how often it hallucinates
//! syntax or semantics, how well it exploits verifier feedback, how fast it
//! decodes, and what it costs. The values are calibrated so that the RQ1/RQ3
//! experiments reproduce the ordering and rough magnitudes reported in the
//! paper — see `EXPERIMENTS.md` for the calibration notes.

/// How a model is deployed, which determines latency/cost accounting (RQ3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deployment {
    /// Locally served open-source model (no monetary cost, slower decode).
    Local,
    /// Commercial API model (per-token cost, faster decode).
    Api,
}

/// The capability/latency/cost profile of one model.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelProfile {
    /// Display name used in the tables, e.g. `Gemini2.0T`.
    pub name: &'static str,
    /// The full version string (Table 1).
    pub version: &'static str,
    /// Whether this is a reasoning model.
    pub reasoning: bool,
    /// Knowledge cut-off date (Table 1).
    pub cutoff: &'static str,
    /// How the model is served.
    pub deployment: Deployment,
    /// Rewrite-finding ability in [0, 1]; compared against strategy difficulty.
    pub skill: f64,
    /// Probability that a proposed candidate contains a syntax error.
    pub syntax_error_rate: f64,
    /// Probability that a proposed candidate is a semantically wrong rewrite.
    pub wrong_rewrite_rate: f64,
    /// Probability that, given verifier feedback, the next attempt fixes the mistake.
    pub feedback_fix_rate: f64,
    /// Extra skill granted on a retry with feedback (reasoning models think harder).
    pub feedback_skill_bonus: f64,
    /// Decode speed in output tokens per second.
    pub decode_tokens_per_s: f64,
    /// Prefill speed in input tokens per second.
    pub prefill_tokens_per_s: f64,
    /// Reasoning tokens emitted per call (0 for non-reasoning models).
    pub reasoning_tokens: usize,
    /// USD per million input tokens (0 for local deployments).
    pub usd_per_m_input: f64,
    /// USD per million output tokens (0 for local deployments).
    pub usd_per_m_output: f64,
}

impl ModelProfile {
    /// The per-call USD cost for the given token counts.
    pub fn cost_usd(&self, input: usize, output_plus_reasoning: usize) -> f64 {
        if self.deployment == Deployment::Local {
            return 0.0;
        }
        input as f64 * self.usd_per_m_input / 1e6
            + output_plus_reasoning as f64 * self.usd_per_m_output / 1e6
    }

    /// The modelled call latency in seconds for the given token counts.
    pub fn latency_seconds(&self, input: usize, output_plus_reasoning: usize) -> f64 {
        0.25 + input as f64 / self.prefill_tokens_per_s
            + output_plus_reasoning as f64 / self.decode_tokens_per_s
    }
}

/// `gemma3:27b` — the smallest, weakest model in the study.
pub fn gemma3() -> ModelProfile {
    ModelProfile {
        name: "Gemma3",
        version: "gemma3:27b",
        reasoning: false,
        cutoff: "08/2024",
        deployment: Deployment::Local,
        skill: 0.22,
        syntax_error_rate: 0.35,
        wrong_rewrite_rate: 0.40,
        feedback_fix_rate: 0.15,
        feedback_skill_bonus: 0.02,
        decode_tokens_per_s: 35.0,
        prefill_tokens_per_s: 900.0,
        reasoning_tokens: 0,
        usd_per_m_input: 0.0,
        usd_per_m_output: 0.0,
    }
}

/// `llama3.3:70b` — the larger locally deployed open-source model.
pub fn llama3_3() -> ModelProfile {
    ModelProfile {
        name: "Llama3.3",
        version: "llama3.3:70b",
        reasoning: false,
        cutoff: "12/2023",
        deployment: Deployment::Local,
        skill: 0.48,
        syntax_error_rate: 0.22,
        wrong_rewrite_rate: 0.28,
        feedback_fix_rate: 0.35,
        feedback_skill_bonus: 0.04,
        decode_tokens_per_s: 14.0,
        prefill_tokens_per_s: 700.0,
        reasoning_tokens: 0,
        usd_per_m_input: 0.0,
        usd_per_m_output: 0.0,
    }
}

/// `gemini-2.0-flash` — commercial base model.
pub fn gemini2_0() -> ModelProfile {
    ModelProfile {
        name: "Gemini2.0",
        version: "gemini-2.0-flash",
        reasoning: false,
        cutoff: "08/2024",
        deployment: Deployment::Api,
        skill: 0.55,
        syntax_error_rate: 0.15,
        wrong_rewrite_rate: 0.25,
        feedback_fix_rate: 0.45,
        feedback_skill_bonus: 0.05,
        decode_tokens_per_s: 150.0,
        prefill_tokens_per_s: 4000.0,
        reasoning_tokens: 0,
        usd_per_m_input: 0.10,
        usd_per_m_output: 0.40,
    }
}

/// `gemini-2.0-flash-thinking-exp-01-21` — the strongest reasoning model in RQ1.
pub fn gemini2_0t() -> ModelProfile {
    ModelProfile {
        name: "Gemini2.0T",
        version: "gemini-2.0-flash-thinking-exp-01-21",
        reasoning: true,
        cutoff: "08/2024",
        deployment: Deployment::Api,
        skill: 0.80,
        syntax_error_rate: 0.10,
        wrong_rewrite_rate: 0.15,
        feedback_fix_rate: 0.80,
        feedback_skill_bonus: 0.12,
        decode_tokens_per_s: 120.0,
        prefill_tokens_per_s: 4000.0,
        reasoning_tokens: 1024,
        usd_per_m_input: 0.10,
        usd_per_m_output: 0.40,
    }
}

/// `gpt-4.1-2025-04-14` — commercial base model.
pub fn gpt4_1() -> ModelProfile {
    ModelProfile {
        name: "GPT-4.1",
        version: "gpt-4.1-2025-04-14",
        reasoning: false,
        cutoff: "06/2024",
        deployment: Deployment::Api,
        skill: 0.58,
        syntax_error_rate: 0.12,
        wrong_rewrite_rate: 0.35,
        feedback_fix_rate: 0.60,
        feedback_skill_bonus: 0.06,
        decode_tokens_per_s: 90.0,
        prefill_tokens_per_s: 3000.0,
        reasoning_tokens: 0,
        usd_per_m_input: 2.0,
        usd_per_m_output: 8.0,
    }
}

/// `o4-mini-2025-04-16` — commercial reasoning model.
pub fn o4_mini() -> ModelProfile {
    ModelProfile {
        name: "o4-mini",
        version: "o4-mini-2025-04-16",
        reasoning: true,
        cutoff: "06/2024",
        deployment: Deployment::Api,
        skill: 0.76,
        syntax_error_rate: 0.08,
        wrong_rewrite_rate: 0.18,
        feedback_fix_rate: 0.75,
        feedback_skill_bonus: 0.10,
        decode_tokens_per_s: 110.0,
        prefill_tokens_per_s: 3000.0,
        reasoning_tokens: 900,
        usd_per_m_input: 1.1,
        usd_per_m_output: 4.4,
    }
}

/// `gemini-2.5-flash-lite` — the high-throughput model used in RQ3
/// (excluded from RQ1 to avoid data leakage).
pub fn gemini2_5() -> ModelProfile {
    ModelProfile {
        name: "Gemini2.5",
        version: "gemini-2.5-flash-lite",
        reasoning: true,
        cutoff: "01/2025",
        deployment: Deployment::Api,
        skill: 0.66,
        syntax_error_rate: 0.10,
        wrong_rewrite_rate: 0.20,
        feedback_fix_rate: 0.65,
        feedback_skill_bonus: 0.08,
        decode_tokens_per_s: 220.0,
        prefill_tokens_per_s: 6000.0,
        reasoning_tokens: 256,
        usd_per_m_input: 0.30,
        usd_per_m_output: 2.40,
    }
}

/// The six models used in RQ1, in the order Table 2 lists them.
pub fn rq1_models() -> Vec<ModelProfile> {
    vec![gemma3(), llama3_3(), gemini2_0(), gemini2_0t(), gpt4_1(), o4_mini()]
}

/// All seven models of Table 1.
pub fn all_models() -> Vec<ModelProfile> {
    let mut m = rq1_models();
    m.push(gemini2_5());
    m
}

/// Looks a profile up by display name.
pub fn by_name(name: &str) -> Option<ModelProfile> {
    all_models().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_inventory() {
        let models = all_models();
        assert_eq!(models.len(), 7);
        assert_eq!(rq1_models().len(), 6);
        assert!(rq1_models().iter().all(|m| m.name != "Gemini2.5"));
        assert_eq!(models.iter().filter(|m| m.reasoning).count(), 3);
        assert!(by_name("Gemini2.0T").unwrap().reasoning);
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn capability_ordering_matches_the_paper() {
        // Reasoning models are stronger than base models; Gemma3 is weakest.
        assert!(gemini2_0t().skill > gpt4_1().skill);
        assert!(o4_mini().skill > gemini2_0().skill);
        assert!(gemma3().skill < llama3_3().skill);
        // Reasoning models exploit feedback better.
        assert!(gemini2_0t().feedback_fix_rate > llama3_3().feedback_fix_rate);
    }

    #[test]
    fn cost_and_latency_models() {
        // Local models are free and slow; API models cost money and are faster.
        assert_eq!(llama3_3().cost_usd(1000, 400), 0.0);
        let api_cost = gemini2_5().cost_usd(900, 350);
        assert!(api_cost > 0.0005 && api_cost < 0.002, "cost {api_cost}");
        assert!(llama3_3().latency_seconds(800, 300) > gemini2_5().latency_seconds(800, 300));
        // A Llama3.3 call with a few hundred output tokens takes tens of seconds.
        let local = llama3_3().latency_seconds(800, 320);
        assert!(local > 15.0 && local < 40.0, "latency {local}");
    }
}
