//! # lpo-minotaur
//!
//! A synthesizing-superoptimizer baseline modelled on Minotaur (Liu et al.),
//! the second comparison point of the LPO paper. Minotaur focuses on integer
//! and floating-point **SIMD** code: it supports vector operations and the
//! min/max intrinsic families that Souper lacks, but its synthesis strategy is
//! template-driven and narrow, so — as the paper reports — it detects far
//! fewer missed optimizations than either Souper-Enum or LPO, and it crashes
//! on some floating-point inputs.
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

use lpo::shard::{ShardCounters, ShardRuntime, ShardSlot, ShardStats};
use lpo_ir::function::Function;
use lpo_ir::instruction::InstKind;
use lpo_llm::strategies::{apply_strategy, Strategy};
use lpo_tv::frozen::FrozenCase;
use lpo_tv::inputs::InputConfig;
use lpo_tv::prelude::EvalArena;
use lpo_tv::refine::{CompileCache, SourceCache, TvConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The result category of one Minotaur run.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// A verified, cheaper replacement was found.
    Found(Function),
    /// No template produced a verified improvement.
    NotFound,
    /// The tool crashed on this input (the paper observes this on the
    /// FP select of case study 3).
    Crashed(String),
}

/// The outcome plus timing for one case.
#[derive(Clone, Debug)]
pub struct MinotaurResult {
    /// What happened.
    pub outcome: Outcome,
    /// Real wall-clock time of this reproduction.
    pub elapsed: Duration,
    /// Modelled execution time of the original tool on this case.
    pub modeled: Duration,
}

impl MinotaurResult {
    /// Returns `true` if a replacement was found.
    pub fn found(&self) -> bool {
        matches!(self.outcome, Outcome::Found(_))
    }
}

/// The synthesis templates Minotaur applies. This is deliberately a *narrow*
/// subset of the strategy library: vector lane rewrites, simple integer icmp
/// folds and the mask/identity family — mirroring the small detection counts
/// the paper reports (3 of 25 in RQ1, 13 of 62 in RQ2).
fn templates() -> Vec<Strategy> {
    const SUPPORTED: [&str; 5] = [
        "shuffle-identity",
        "patch-142711",   // icmp of xor
        "patch-157524",   // shl/lshr mask
        "patch-163108-2", // or of complementary masks
        "patch-157370",   // not of icmp
    ];
    lpo_llm::strategies::library()
        .into_iter()
        .filter(|s| SUPPORTED.contains(&s.name))
        .collect()
}

fn crashes_on(func: &Function) -> Option<String> {
    // The paper notes Minotaur crashes on the fcmp-ord/select pattern of case
    // study 3; reproduce that behaviour for FP selects guarded by an fcmp.
    let has_fp_select = func.iter_insts().any(|(_, inst)| {
        matches!(inst.kind, InstKind::Select { .. }) && inst.ty.is_float_or_float_vector()
    });
    let has_fcmp = func.iter_insts().any(|(_, inst)| matches!(inst.kind, InstKind::FCmp { .. }));
    if has_fp_select && has_fcmp {
        Some("slice construction failed on a floating-point select".to_string())
    } else {
        None
    }
}

/// Runs the Minotaur baseline over a batch of sequences on `jobs` worker
/// threads (`0` = available parallelism), returning results in input order.
///
/// Each case is a pure function of `func`, so the output is bit-identical
/// for every worker count — the same contract as the session engine in
/// `lpo-core`.
pub fn superoptimize_batch(functions: &[Function], jobs: usize) -> Vec<MinotaurResult> {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
    .min(functions.len())
    .max(1);
    // One compiled-function cache per batch (template instantiations repeat
    // structurally across similar cases); hits only save wall-clock time,
    // never change outcomes, so jobs-invariance holds.
    let cache = CompileCache::new();
    if jobs == 1 {
        return functions.iter().map(|f| superoptimize_with_cache(f, &cache)).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<MinotaurResult>>> =
        std::sync::Mutex::new(vec![None; functions.len()]);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= functions.len() {
                    break;
                }
                let result = superoptimize_with_cache(&functions[index], &cache);
                slots.lock().expect("result store poisoned")[index] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("result store poisoned")
        .into_iter()
        .map(|slot| slot.expect("worker pool filled every slot"))
        .collect()
}

/// Runs the Minotaur baseline on one wrapped instruction sequence.
pub fn superoptimize(func: &Function) -> MinotaurResult {
    superoptimize_with_cache(func, &CompileCache::new())
}

/// [`superoptimize`] with an explicit compiled-function cache, shared across
/// a batch by [`superoptimize_batch`]. The cache only affects wall-clock
/// time, never outcomes.
pub fn superoptimize_with_cache(func: &Function, compile_cache: &CompileCache) -> MinotaurResult {
    let start = Instant::now();
    if let Some(reason) = crashes_on(func) {
        return MinotaurResult {
            outcome: Outcome::Crashed(reason),
            elapsed: start.elapsed(),
            modeled: Duration::from_secs(2),
        };
    }
    // Stage 1, source side, **once per case** and text-free: the template
    // scan and the verifier both work on the canonical `Function` value, the
    // same form `opt` would hand the real tool. Extracted corpus sequences
    // are canonical fixpoints already, so table outcomes are unchanged.
    let mut canonical = func.clone();
    let _ = lpo_opt::pipeline::Pipeline::default().run(&mut canonical);
    let func = &canonical;
    // All templates verify against the same source: cache its per-input
    // outcomes and reuse one evaluation arena across the whole scan.
    let case = SourceCache::new(func, minotaur_tv()).with_compile_cache(compile_cache);
    let mut arena = EvalArena::new();
    let mut templates_tried = 0usize;
    for template in templates() {
        templates_tried += 1;
        if let Some(candidate) = apply_strategy(&template, func) {
            if candidate.instruction_count() <= func.instruction_count()
                && case.verify_outcome_only(&candidate, &mut arena)
            {
                return MinotaurResult {
                    outcome: Outcome::Found(candidate),
                    elapsed: start.elapsed(),
                    modeled: Duration::from_secs_f64(3.0 + 2.5 * templates_tried as f64),
                };
            }
        }
    }
    MinotaurResult {
        outcome: Outcome::NotFound,
        elapsed: start.elapsed(),
        modeled: Duration::from_secs_f64(3.0 + 2.5 * templates_tried as f64),
    }
}

fn minotaur_tv() -> TvConfig {
    TvConfig {
        inputs: InputConfig { exhaustive_bits: 10, random_samples: 48, seed: 0x3140 },
        ..TvConfig::default()
    }
}

/// [`superoptimize_with_cache`] with template verification decomposed into
/// stealable shards on `runtime`: the template scan instantiates its
/// (cost-gated) candidates up front, they split into order-preserving chunks
/// of `shard_size`, idle workers steal and verify them against a frozen
/// source snapshot, and the first verified candidate *in template order*
/// wins (a find cancels later chunks). Outcomes and modelled times are
/// identical to the serial scan for every worker count and shard size — the
/// serial loop stops at the first verifying template, so `templates_tried`
/// at that template is what both report.
fn superoptimize_sharded_in(
    func: &Function,
    compile_cache: &Arc<CompileCache>,
    runtime: &ShardRuntime,
    shard_size: usize,
    arena: &mut EvalArena,
) -> MinotaurResult {
    let start = Instant::now();
    if let Some(reason) = crashes_on(func) {
        return MinotaurResult {
            outcome: Outcome::Crashed(reason),
            elapsed: start.elapsed(),
            modeled: Duration::from_secs(2),
        };
    }
    let mut canonical = func.clone();
    let _ = lpo_opt::pipeline::Pipeline::default().run(&mut canonical);
    let func = &canonical;

    // Plan: instantiate every template candidate the serial scan would
    // verify, tagged with its `templates_tried` counter.
    let mut templates_tried = 0usize;
    let mut planned: Vec<(usize, Function)> = Vec::new();
    for template in templates() {
        templates_tried += 1;
        if let Some(candidate) = apply_strategy(&template, func) {
            if candidate.instruction_count() <= func.instruction_count() {
                planned.push((templates_tried, candidate));
            }
        }
    }

    let frozen = FrozenCase::freeze(func, &minotaur_tv(), arena);
    let shard_size = shard_size.max(1);
    let tasks: Vec<_> = planned
        .chunks(shard_size)
        .map(|chunk| {
            let chunk: Vec<(usize, Function)> = chunk.to_vec();
            let frozen = frozen.clone();
            let cache = compile_cache.clone();
            move |arena: &mut EvalArena| {
                let find = chunk
                    .into_iter()
                    .find(|(_, cand)| frozen.verify_outcome_only(cand, Some(&cache), arena));
                let cut = find.is_some();
                (find, cut)
            }
        })
        .collect();
    let slots = runtime.fork_join(arena, tasks);

    // Ordered merge: the first executed slot carrying a find is the serial
    // scan's find (every earlier chunk verified nothing).
    for slot in slots {
        if let ShardSlot::Executed(Some((tried, candidate))) = slot {
            return MinotaurResult {
                outcome: Outcome::Found(candidate),
                elapsed: start.elapsed(),
                modeled: Duration::from_secs_f64(3.0 + 2.5 * tried as f64),
            };
        }
    }
    MinotaurResult {
        outcome: Outcome::NotFound,
        elapsed: start.elapsed(),
        modeled: Duration::from_secs_f64(3.0 + 2.5 * templates_tried as f64),
    }
}

/// [`superoptimize_batch`] on the work-stealing shard scheduler: workers
/// pull whole cases off a cursor, each case's template verification forks
/// into stealable chunks, and workers out of cases drain the shard deque.
/// Results are in input order and bit-identical to [`superoptimize_batch`]
/// for every `jobs`/`shard_size`; also returns the run's shard accounting.
pub fn superoptimize_batch_sharded(
    functions: &[Function],
    jobs: usize,
    shard_size: usize,
) -> (Vec<MinotaurResult>, ShardStats) {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
    .max(1);
    let cache = Arc::new(CompileCache::new());
    let counters = Arc::new(ShardCounters::new());
    let runtime = ShardRuntime::new(jobs, counters);
    let results = runtime.run_cases(functions.len(), |index, arena| {
        superoptimize_sharded_in(&functions[index], &cache, &runtime, shard_size, arena)
    });
    let stats = runtime.stats();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    #[test]
    fn batch_is_ordered_and_jobs_invariant() {
        let texts = [
            "define i32 @a(i32 %x) {\n %r = add i32 %x, 0\n ret i32 %r\n}",
            "define i1 @b(i32 %x, i32 %y) {\n %a = xor i32 %x, %y\n %c = icmp eq i32 %a, 0\n ret i1 %c\n}",
        ];
        let functions: Vec<Function> = texts.iter().map(|t| parse_function(t).unwrap()).collect();
        let serial = superoptimize_batch(&functions, 1);
        let parallel = superoptimize_batch(&functions, 2);
        assert_eq!(serial.len(), functions.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.outcome, p.outcome);
            assert_eq!(s.modeled, p.modeled);
        }
    }

    #[test]
    fn sharded_scan_is_as_if_serial() {
        // A found case, a not-found case, and a crash case — the sharded
        // reports must match the serial ones for every jobs/shard-size.
        let texts = [
            "define i1 @find(i8 %x) {\n %a = xor i8 %x, 12\n %c = icmp eq i8 %a, 5\n ret i1 %c\n}",
            "define i32 @miss(i32 %x) {\n %a = mul i32 %x, 7\n %b = add i32 %a, %x\n ret i32 %b\n}",
            "define i1 @crash(double %0) {\n\
             %2 = fcmp ord double %0, 0.000000e+00\n\
             %3 = select i1 %2, double %0, double 0.000000e+00\n\
             %4 = fcmp oeq double %3, 1.000000e+00\n\
             ret i1 %4\n}",
        ];
        let functions: Vec<Function> = texts.iter().map(|t| parse_function(t).unwrap()).collect();
        let serial = superoptimize_batch(&functions, 1);
        assert!(serial[0].found());
        assert_eq!(serial[1].outcome, Outcome::NotFound);
        assert!(matches!(serial[2].outcome, Outcome::Crashed(_)));
        for jobs in [1, 3] {
            for shard_size in [1, 2, usize::MAX] {
                let (sharded, _) = superoptimize_batch_sharded(&functions, jobs, shard_size);
                for (s, p) in serial.iter().zip(&sharded) {
                    assert_eq!(s.outcome, p.outcome, "jobs {jobs}, shard {shard_size}");
                    assert_eq!(s.modeled, p.modeled, "jobs {jobs}, shard {shard_size}");
                }
            }
        }
    }

    #[test]
    fn finds_its_simd_and_mask_templates() {
        let f = parse_function(
            "define <4 x i32> @f(<4 x i32> %v, <4 x i32> %w) {\n\
             %s = shufflevector <4 x i32> %v, <4 x i32> %w, <4 x i32> <i32 0, i32 1, i32 2, i32 3>\n\
             %r = add <4 x i32> %s, zeroinitializer\n\
             ret <4 x i32> %r\n}",
        )
        .unwrap();
        assert!(superoptimize(&f).found());

        let g = parse_function(
            "define i1 @g(i8 %x) {\n %a = xor i8 %x, 12\n %c = icmp eq i8 %a, 5\n ret i1 %c\n}",
        )
        .unwrap();
        assert!(superoptimize(&g).found());
    }

    #[test]
    fn misses_the_clamp_and_memory_cases() {
        // Figure 1: supported operations (it can handle umin), but no template matches.
        let clamp = parse_function(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
        )
        .unwrap();
        assert_eq!(superoptimize(&clamp).outcome, Outcome::NotFound);

        // Case study 1 (load merging) is also missed.
        let loads = parse_function(
            "define i32 @src(ptr %0) {\n\
             %2 = load i16, ptr %0, align 2\n\
             %3 = getelementptr i8, ptr %0, i64 2\n\
             %4 = load i16, ptr %3, align 1\n\
             %5 = zext i16 %4 to i32\n\
             %6 = shl nuw i32 %5, 16\n\
             %7 = zext i16 %2 to i32\n\
             %8 = or disjoint i32 %6, %7\n\
             ret i32 %8\n}",
        )
        .unwrap();
        assert_eq!(superoptimize(&loads).outcome, Outcome::NotFound);
    }

    #[test]
    fn crashes_on_fp_select_like_case_study_3() {
        let f = parse_function(
            "define i1 @src(double %0) {\n\
             %2 = fcmp ord double %0, 0.000000e+00\n\
             %3 = select i1 %2, double %0, double 0.000000e+00\n\
             %4 = fcmp oeq double %3, 1.000000e+00\n\
             ret i1 %4\n}",
        )
        .unwrap();
        let r = superoptimize(&f);
        assert!(matches!(r.outcome, Outcome::Crashed(_)));
        assert!(!r.found());
    }

    #[test]
    fn reports_timing() {
        let f = parse_function("define i32 @f(i32 %x) {\n %a = mul i32 %x, 7\n %b = add i32 %a, %x\n ret i32 %b\n}").unwrap();
        let r = superoptimize(&f);
        assert!(r.modeled > Duration::from_secs(1));
    }
}
