//! Coverage for the use-list-maintaining mutation API of [`Function`]:
//! coherence after `replace_all_uses_with` / `erase_inst` / `insert_before` /
//! `set_operand` / `set_inst_kind` (including phi and terminator operands),
//! verifier rejection of stale lists, and a randomized mutate-then-verify
//! loop driven by the vendored `rand`.

use lpo_ir::builder::FunctionBuilder;
use lpo_ir::constant::Constant;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, ICmpPred, InstId, InstKind, Instruction, Value};
use lpo_ir::parser::parse_function;
use lpo_ir::types::Type;
use lpo_ir::verifier::verify_function;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn chain(n: usize) -> Function {
    let mut b = FunctionBuilder::new("chain", Type::i32());
    let x = b.add_param("x", Type::i32());
    let mut value = x;
    for i in 0..n {
        value = b.add(value, Value::int(32, i as u128 + 1));
    }
    b.ret(Some(value));
    b.build()
}

#[test]
fn use_lists_track_terminator_and_repeated_uses() {
    let mut b = FunctionBuilder::new("f", Type::i32());
    let x = b.add_param("x", Type::i32());
    let a = b.add(x.clone(), Value::int(32, 1));
    let doubled = b.add(a.clone(), a.clone()); // two uses by one instruction
    b.ret(Some(doubled.clone()));
    let f = b.build();
    let a_id = a.as_inst().unwrap();
    let d_id = doubled.as_inst().unwrap();
    assert_eq!(f.uses_of(a_id).len(), 2, "one entry per use");
    assert_eq!(f.users_of(a_id), vec![d_id], "distinct users deduplicated");
    assert_eq!(f.num_users(a_id), 1);
    // The `ret` terminator is a user like any other.
    assert_eq!(f.num_users(d_id), 1);
    assert!(!f.is_unused(d_id));
    f.verify_use_lists().unwrap();
}

#[test]
fn replace_all_uses_with_keeps_lists_coherent() {
    let mut func = chain(4);
    let first = func.block(func.entry()).insts[0];
    let second = func.block(func.entry()).insts[1];
    func.replace_all_uses_with(first, &Value::Const(Constant::int(32, 9)));
    assert!(func.is_unused(first));
    func.verify_use_lists().unwrap();
    verify_function(&func).unwrap();

    // Replacing with another instruction's result moves the use entries.
    let third = func.block(func.entry()).insts[2];
    func.replace_all_uses_with(third, &Value::Inst(second));
    assert!(func.is_unused(third));
    assert!(func.uses_of(second).len() >= 2);
    func.erase_inst(third);
    func.verify_use_lists().unwrap();
    verify_function(&func).unwrap();
}

#[test]
fn erase_inst_drops_operand_uses_and_tolerates_unplaced_ids() {
    let mut func = chain(3);
    let first = func.block(func.entry()).insts[0];
    let second = func.block(func.entry()).insts[1];
    func.replace_all_uses_with(second, &Value::Const(Constant::int(32, 5)));
    func.erase_inst(second);
    // `second` no longer uses `first`.
    assert!(func.is_unused(first));
    // Erasing an already-erased id is a no-op, not a double-forget.
    func.erase_inst(second);
    func.verify_use_lists().unwrap();
}

#[test]
fn insert_before_and_set_operand_update_lists() {
    let mut func = chain(2);
    let first = func.block(func.entry()).insts[0];
    let second = func.block(func.entry()).insts[1];
    let mul = func.insert_before(
        second,
        Instruction::new(
            InstKind::Binary {
                op: BinOp::Mul,
                lhs: Value::Inst(first),
                rhs: Value::int(32, 3),
                flags: Default::default(),
            },
            Type::i32(),
            "m",
        ),
    );
    assert_eq!(func.block(func.entry()).insts[1], mul);
    assert_eq!(func.num_users(first), 2);
    func.verify_use_lists().unwrap();

    // Point the second add at the new mul instead of the first add.
    func.set_operand(second, 0, Value::Inst(mul));
    assert_eq!(func.num_users(first), 1, "use moved off the first add");
    assert_eq!(func.num_users(mul), 1);
    func.verify_use_lists().unwrap();
    verify_function(&func).unwrap();
}

#[test]
fn set_inst_kind_swaps_operand_uses() {
    let mut func = chain(3);
    let entry = func.entry();
    let first = func.block(entry).insts[0];
    let third = func.block(entry).insts[2];
    // Rewrite the third add to consume the first add directly.
    func.set_inst_kind(
        third,
        InstKind::Binary {
            op: BinOp::Xor,
            lhs: Value::Inst(first),
            rhs: Value::int(32, 7),
            flags: Default::default(),
        },
        Type::i32(),
    );
    let second = func.block(entry).insts[1];
    assert!(func.is_unused(second));
    assert_eq!(func.num_users(first), 2);
    func.verify_use_lists().unwrap();
    verify_function(&func).unwrap();
}

#[test]
fn phi_operands_are_tracked_through_parse_and_mutation() {
    let mut func = parse_function(
        "define i32 @sum(i32 %n) {\n\
         entry:\n  br label %header\n\
         header:\n\
           %i = phi i32 [ 0, %entry ], [ %j, %header ]\n\
           %j = add i32 %i, 1\n\
           %c = icmp ult i32 %j, %n\n\
           br i1 %c, label %header, label %exit\n\
         exit:\n  ret i32 %j\n}",
    )
    .unwrap();
    func.verify_use_lists().unwrap();
    let phi = func.inst_by_name("i").unwrap();
    let j = func.inst_by_name("j").unwrap();
    // The phi's back-edge value is a use of %j recorded by the parser's
    // pending-phi resolution.
    assert!(func.uses_of(j).contains(&phi));
    // Redirect the back edge through set_operand and re-check coherence.
    func.set_operand(phi, 1, Value::int(32, 0));
    assert!(!func.uses_of(j).contains(&phi));
    func.verify_use_lists().unwrap();
    verify_function(&func).unwrap();
}

#[test]
fn verifier_rejects_stale_use_lists() {
    let mut func = chain(2);
    let first = func.block(func.entry()).insts[0];
    // Bypass the mutation API: edit an operand through `inst_mut`.
    let second = func.block(func.entry()).insts[1];
    for op in func.inst_mut(second).kind.operands_mut() {
        if matches!(op, Value::Inst(id) if *id == first) {
            *op = Value::int(32, 1);
        }
    }
    let err = verify_function(&func).unwrap_err();
    assert!(
        err.message.contains("use-list incoherence"),
        "unexpected error: {}",
        err.message
    );
    // `rebuild_use_lists` repairs the damage.
    func.rebuild_use_lists();
    verify_function(&func).unwrap();
}

/// Proptest-style randomized loop: apply a random sequence of API mutations
/// and re-check use-list coherence plus full verification after each step.
#[test]
fn randomized_mutate_then_verify() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x1f00d + seed);
        let mut func = chain(6);
        for step in 0..40 {
            let placed: Vec<InstId> =
                func.iter_inst_ids().filter(|id| !func.inst(*id).is_terminator()).collect();
            if placed.is_empty() {
                break;
            }
            let victim = placed[rng.gen_range(0..placed.len())];
            match rng.gen_range(0..5u32) {
                0 => {
                    // RAUW with a constant, then erase when dead.
                    func.replace_all_uses_with(victim, &Value::int(32, rng.gen_range(0..64u32) as u128));
                    if func.is_unused(victim) {
                        func.erase_inst(victim);
                    }
                }
                1 => {
                    // RAUW with another placed instruction of the same type.
                    let same_ty: Vec<InstId> = placed
                        .iter()
                        .copied()
                        .filter(|&other| other != victim && func.inst(other).ty == func.inst(victim).ty)
                        .collect();
                    if let Some(&other) = same_ty.first() {
                        func.replace_all_uses_with(victim, &Value::Inst(other));
                        if func.is_unused(victim) {
                            func.erase_inst(victim);
                        }
                    }
                }
                2 => {
                    // Insert a helper immediately before the victim and wire
                    // the victim's first operand through it.
                    let operand = func.inst(victim).kind.operands().first().map(|op| (*op).clone());
                    if let Some(operand) = operand {
                        if func.value_type(&operand) == Type::i32() {
                            let helper = func.insert_before(
                                victim,
                                Instruction::new(
                                    InstKind::Binary {
                                        op: BinOp::Xor,
                                        lhs: operand,
                                        rhs: Value::int(32, step as u128 + 1),
                                        flags: Default::default(),
                                    },
                                    Type::i32(),
                                    format!("h{seed}.{step}"),
                                ),
                            );
                            func.set_operand(victim, 0, Value::Inst(helper));
                        }
                    }
                }
                3 => {
                    // Mutate the kind in place.
                    let ops: Vec<Value> =
                        func.inst(victim).kind.operands().iter().map(|op| (*op).clone()).collect();
                    if func.inst(victim).ty == Type::i32() && !ops.is_empty() {
                        let lhs = ops[0].clone();
                        func.set_inst_kind(
                            victim,
                            InstKind::Binary {
                                op: if rng.gen_bool(0.5) { BinOp::Or } else { BinOp::And },
                                lhs,
                                rhs: Value::int(32, 0xff),
                                flags: Default::default(),
                            },
                            Type::i32(),
                        );
                    }
                }
                _ => {
                    // Compare against an icmp consumer wired via set_operand.
                    if func.inst(victim).ty == Type::i32() {
                        let cmp = func.insert_before(
                            *func.block(func.entry()).insts.last().unwrap(),
                            Instruction::new(
                                InstKind::ICmp {
                                    pred: ICmpPred::Ult,
                                    lhs: Value::Inst(victim),
                                    rhs: Value::int(32, 100),
                                },
                                Type::i1(),
                                format!("c{seed}.{step}"),
                            ),
                        );
                        assert!(func.uses_of(victim).contains(&cmp));
                    }
                }
            }
            func.verify_use_lists().unwrap_or_else(|e| {
                panic!("seed {seed} step {step}: incoherent use lists: {e}")
            });
            verify_function(&func)
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: verifier rejected: {e}"));
        }
        // Compaction preserves coherence and verification.
        func.compact();
        func.verify_use_lists().unwrap();
        verify_function(&func).unwrap();
    }
}
