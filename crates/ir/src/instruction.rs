//! Instruction opcodes, operands, and the [`Instruction`] container.
//!
//! Instructions reference their operands through [`Value`]s: either a function
//! argument, the result of another instruction (by [`InstId`]), or an inline
//! [`Constant`]. Instructions live in an arena owned by the enclosing
//! [`Function`](crate::function::Function); basic blocks hold ordered lists of
//! [`InstId`]s.

use crate::constant::Constant;
use crate::flags::{FastMathFlags, IntFlags};
use crate::types::Type;
use std::fmt;

/// Identifier of an instruction inside its function's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Identifier of a basic block inside its function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// An operand: a function argument, another instruction's result, or a constant.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// The `index`-th function parameter.
    Arg(usize),
    /// The result of the instruction with the given id.
    Inst(InstId),
    /// An inline constant.
    Const(Constant),
}

impl Value {
    /// Convenience constructor for an integer constant operand.
    pub fn int(width: u32, value: u128) -> Value {
        Value::Const(Constant::int(width, value))
    }

    /// Convenience constructor for a signed integer constant operand.
    pub fn int_signed(width: u32, value: i128) -> Value {
        Value::Const(Constant::int_signed(width, value))
    }

    /// Convenience constructor for a boolean constant operand.
    pub fn bool(value: bool) -> Value {
        Value::Const(Constant::bool(value))
    }

    /// Returns the constant if this operand is a constant.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Value::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Returns the instruction id if this operand is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// Returns `true` if this operand is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Value {
        Value::Const(c)
    }
}

impl From<InstId> for Value {
    fn from(id: InstId) -> Value {
        Value::Inst(id)
    }
}

/// Integer binary opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Unsigned division.
    UDiv,
    /// Signed division.
    SDiv,
    /// Unsigned remainder.
    URem,
    /// Signed remainder.
    SRem,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

impl BinOp {
    /// All integer binary opcodes, useful for enumeration-based synthesis.
    pub const ALL: [BinOp; 13] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::UDiv,
        BinOp::SDiv,
        BinOp::URem,
        BinOp::SRem,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
    ];

    /// The LLVM mnemonic for this opcode.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        }
    }

    /// Returns `true` for commutative opcodes.
    pub fn is_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// Returns `true` for division/remainder opcodes whose right operand being
    /// zero is immediate undefined behaviour.
    pub fn is_division(self) -> bool {
        matches!(self, BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem)
    }

    /// Returns `true` for shift opcodes.
    pub fn is_shift(self) -> bool {
        matches!(self, BinOp::Shl | BinOp::LShr | BinOp::AShr)
    }

    /// Returns `true` for bitwise opcodes.
    pub fn is_bitwise(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// Which flags this opcode may legally carry.
    pub fn allowed_flags(self) -> IntFlags {
        match self {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl => IntFlags::nuw_nsw(),
            BinOp::UDiv | BinOp::SDiv | BinOp::LShr | BinOp::AShr => IntFlags::exact(),
            BinOp::Or => IntFlags::disjoint(),
            _ => IntFlags::none(),
        }
    }
}

/// Floating-point binary opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FBinOp {
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
    /// Floating-point remainder.
    FRem,
}

impl FBinOp {
    /// All floating-point binary opcodes.
    pub const ALL: [FBinOp; 5] = [FBinOp::FAdd, FBinOp::FSub, FBinOp::FMul, FBinOp::FDiv, FBinOp::FRem];

    /// The LLVM mnemonic for this opcode.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FBinOp::FAdd => "fadd",
            FBinOp::FSub => "fsub",
            FBinOp::FMul => "fmul",
            FBinOp::FDiv => "fdiv",
            FBinOp::FRem => "frem",
        }
    }

    /// Returns `true` for commutative opcodes.
    pub fn is_commutative(self) -> bool {
        matches!(self, FBinOp::FAdd | FBinOp::FMul)
    }
}

/// Integer comparison predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ICmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater or equal.
    Uge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less or equal.
    Ule,
    /// Signed greater than.
    Sgt,
    /// Signed greater or equal.
    Sge,
    /// Signed less than.
    Slt,
    /// Signed less or equal.
    Sle,
}

impl ICmpPred {
    /// All integer predicates.
    pub const ALL: [ICmpPred; 10] = [
        ICmpPred::Eq,
        ICmpPred::Ne,
        ICmpPred::Ugt,
        ICmpPred::Uge,
        ICmpPred::Ult,
        ICmpPred::Ule,
        ICmpPred::Sgt,
        ICmpPred::Sge,
        ICmpPred::Slt,
        ICmpPred::Sle,
    ];

    /// The LLVM spelling of this predicate.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmpPred::Eq => "eq",
            ICmpPred::Ne => "ne",
            ICmpPred::Ugt => "ugt",
            ICmpPred::Uge => "uge",
            ICmpPred::Ult => "ult",
            ICmpPred::Ule => "ule",
            ICmpPred::Sgt => "sgt",
            ICmpPred::Sge => "sge",
            ICmpPred::Slt => "slt",
            ICmpPred::Sle => "sle",
        }
    }

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> ICmpPred {
        match self {
            ICmpPred::Eq => ICmpPred::Eq,
            ICmpPred::Ne => ICmpPred::Ne,
            ICmpPred::Ugt => ICmpPred::Ult,
            ICmpPred::Uge => ICmpPred::Ule,
            ICmpPred::Ult => ICmpPred::Ugt,
            ICmpPred::Ule => ICmpPred::Uge,
            ICmpPred::Sgt => ICmpPred::Slt,
            ICmpPred::Sge => ICmpPred::Sle,
            ICmpPred::Slt => ICmpPred::Sgt,
            ICmpPred::Sle => ICmpPred::Sge,
        }
    }

    /// The logical negation of this predicate.
    pub fn inverted(self) -> ICmpPred {
        match self {
            ICmpPred::Eq => ICmpPred::Ne,
            ICmpPred::Ne => ICmpPred::Eq,
            ICmpPred::Ugt => ICmpPred::Ule,
            ICmpPred::Uge => ICmpPred::Ult,
            ICmpPred::Ult => ICmpPred::Uge,
            ICmpPred::Ule => ICmpPred::Ugt,
            ICmpPred::Sgt => ICmpPred::Sle,
            ICmpPred::Sge => ICmpPred::Slt,
            ICmpPred::Slt => ICmpPred::Sge,
            ICmpPred::Sle => ICmpPred::Sgt,
        }
    }

    /// Returns `true` for the signed predicates.
    pub fn is_signed(self) -> bool {
        matches!(self, ICmpPred::Sgt | ICmpPred::Sge | ICmpPred::Slt | ICmpPred::Sle)
    }

    /// Returns `true` for `eq`/`ne`.
    pub fn is_equality(self) -> bool {
        matches!(self, ICmpPred::Eq | ICmpPred::Ne)
    }
}

/// Floating-point comparison predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FCmpPred {
    /// Always false.
    False,
    /// Ordered and equal.
    Oeq,
    /// Ordered and greater than.
    Ogt,
    /// Ordered and greater or equal.
    Oge,
    /// Ordered and less than.
    Olt,
    /// Ordered and less or equal.
    Ole,
    /// Ordered and not equal.
    One,
    /// Ordered (no NaNs).
    Ord,
    /// Unordered or equal.
    Ueq,
    /// Unordered or greater than.
    Ugt,
    /// Unordered or greater or equal.
    Uge,
    /// Unordered or less than.
    Ult,
    /// Unordered or less or equal.
    Ule,
    /// Unordered or not equal.
    Une,
    /// Unordered (either operand NaN).
    Uno,
    /// Always true.
    True,
}

impl FCmpPred {
    /// All floating-point predicates.
    pub const ALL: [FCmpPred; 16] = [
        FCmpPred::False,
        FCmpPred::Oeq,
        FCmpPred::Ogt,
        FCmpPred::Oge,
        FCmpPred::Olt,
        FCmpPred::Ole,
        FCmpPred::One,
        FCmpPred::Ord,
        FCmpPred::Ueq,
        FCmpPred::Ugt,
        FCmpPred::Uge,
        FCmpPred::Ult,
        FCmpPred::Ule,
        FCmpPred::Une,
        FCmpPred::Uno,
        FCmpPred::True,
    ];

    /// The LLVM spelling of this predicate.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmpPred::False => "false",
            FCmpPred::Oeq => "oeq",
            FCmpPred::Ogt => "ogt",
            FCmpPred::Oge => "oge",
            FCmpPred::Olt => "olt",
            FCmpPred::Ole => "ole",
            FCmpPred::One => "one",
            FCmpPred::Ord => "ord",
            FCmpPred::Ueq => "ueq",
            FCmpPred::Ugt => "ugt",
            FCmpPred::Uge => "uge",
            FCmpPred::Ult => "ult",
            FCmpPred::Ule => "ule",
            FCmpPred::Une => "une",
            FCmpPred::Uno => "uno",
            FCmpPred::True => "true",
        }
    }

    /// Returns `true` for ordered predicates (false when either operand is NaN).
    pub fn is_ordered(self) -> bool {
        matches!(
            self,
            FCmpPred::Oeq | FCmpPred::Ogt | FCmpPred::Oge | FCmpPred::Olt | FCmpPred::Ole | FCmpPred::One | FCmpPred::Ord
        )
    }
}

/// Cast opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Integer truncation.
    Trunc,
    /// Zero extension.
    ZExt,
    /// Sign extension.
    SExt,
    /// Floating-point truncation (e.g. `double` → `float`).
    FpTrunc,
    /// Floating-point extension.
    FpExt,
    /// Floating point to unsigned integer.
    FpToUi,
    /// Floating point to signed integer.
    FpToSi,
    /// Unsigned integer to floating point.
    UiToFp,
    /// Signed integer to floating point.
    SiToFp,
    /// Pointer to integer.
    PtrToInt,
    /// Integer to pointer.
    IntToPtr,
    /// Reinterpret the bits as another same-sized type.
    Bitcast,
}

impl CastOp {
    /// The LLVM mnemonic for this cast.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Trunc => "trunc",
            CastOp::ZExt => "zext",
            CastOp::SExt => "sext",
            CastOp::FpTrunc => "fptrunc",
            CastOp::FpExt => "fpext",
            CastOp::FpToUi => "fptoui",
            CastOp::FpToSi => "fptosi",
            CastOp::UiToFp => "uitofp",
            CastOp::SiToFp => "sitofp",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
            CastOp::Bitcast => "bitcast",
        }
    }

    /// Which flags this cast may legally carry.
    pub fn allowed_flags(self) -> IntFlags {
        match self {
            CastOp::Trunc => IntFlags::nuw_nsw(),
            CastOp::ZExt | CastOp::UiToFp => IntFlags::nneg(),
            _ => IntFlags::none(),
        }
    }
}

/// The supported intrinsic functions (a practical subset of `llvm.*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `llvm.umin.*` — unsigned minimum.
    Umin,
    /// `llvm.umax.*` — unsigned maximum.
    Umax,
    /// `llvm.smin.*` — signed minimum.
    Smin,
    /// `llvm.smax.*` — signed maximum.
    Smax,
    /// `llvm.abs.*` — absolute value; second operand is `i1 is_int_min_poison`.
    Abs,
    /// `llvm.ctpop.*` — population count.
    Ctpop,
    /// `llvm.ctlz.*` — count leading zeros; second operand is `i1 is_zero_poison`.
    Ctlz,
    /// `llvm.cttz.*` — count trailing zeros; second operand is `i1 is_zero_poison`.
    Cttz,
    /// `llvm.bswap.*` — byte swap.
    Bswap,
    /// `llvm.bitreverse.*` — bit reversal.
    Bitreverse,
    /// `llvm.fshl.*` — funnel shift left.
    Fshl,
    /// `llvm.fshr.*` — funnel shift right.
    Fshr,
    /// `llvm.uadd.sat.*` — saturating unsigned addition.
    UaddSat,
    /// `llvm.sadd.sat.*` — saturating signed addition.
    SaddSat,
    /// `llvm.usub.sat.*` — saturating unsigned subtraction.
    UsubSat,
    /// `llvm.ssub.sat.*` — saturating signed subtraction.
    SsubSat,
    /// `llvm.fabs.*` — floating point absolute value.
    Fabs,
    /// `llvm.sqrt.*` — floating point square root.
    Sqrt,
    /// `llvm.minnum.*` — floating point minimum (NaN-ignoring).
    Minnum,
    /// `llvm.maxnum.*` — floating point maximum (NaN-ignoring).
    Maxnum,
    /// `llvm.copysign.*` — copy the sign of the second operand onto the first.
    Copysign,
    /// `llvm.fma.*` — fused multiply-add.
    Fma,
}

impl Intrinsic {
    /// All supported intrinsics.
    pub const ALL: [Intrinsic; 22] = [
        Intrinsic::Umin,
        Intrinsic::Umax,
        Intrinsic::Smin,
        Intrinsic::Smax,
        Intrinsic::Abs,
        Intrinsic::Ctpop,
        Intrinsic::Ctlz,
        Intrinsic::Cttz,
        Intrinsic::Bswap,
        Intrinsic::Bitreverse,
        Intrinsic::Fshl,
        Intrinsic::Fshr,
        Intrinsic::UaddSat,
        Intrinsic::SaddSat,
        Intrinsic::UsubSat,
        Intrinsic::SsubSat,
        Intrinsic::Fabs,
        Intrinsic::Sqrt,
        Intrinsic::Minnum,
        Intrinsic::Maxnum,
        Intrinsic::Copysign,
        Intrinsic::Fma,
    ];

    /// The short name used inside `llvm.<name>.<type>` spellings.
    pub fn short_name(self) -> &'static str {
        match self {
            Intrinsic::Umin => "umin",
            Intrinsic::Umax => "umax",
            Intrinsic::Smin => "smin",
            Intrinsic::Smax => "smax",
            Intrinsic::Abs => "abs",
            Intrinsic::Ctpop => "ctpop",
            Intrinsic::Ctlz => "ctlz",
            Intrinsic::Cttz => "cttz",
            Intrinsic::Bswap => "bswap",
            Intrinsic::Bitreverse => "bitreverse",
            Intrinsic::Fshl => "fshl",
            Intrinsic::Fshr => "fshr",
            Intrinsic::UaddSat => "uadd.sat",
            Intrinsic::SaddSat => "sadd.sat",
            Intrinsic::UsubSat => "usub.sat",
            Intrinsic::SsubSat => "ssub.sat",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Minnum => "minnum",
            Intrinsic::Maxnum => "maxnum",
            Intrinsic::Copysign => "copysign",
            Intrinsic::Fma => "fma",
        }
    }

    /// Parses a short intrinsic name (the part between `llvm.` and the type suffix).
    pub fn from_short_name(name: &str) -> Option<Intrinsic> {
        Intrinsic::ALL.iter().copied().find(|i| i.short_name() == name)
    }

    /// The number of value arguments the intrinsic expects.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Ctpop
            | Intrinsic::Bswap
            | Intrinsic::Bitreverse
            | Intrinsic::Fabs
            | Intrinsic::Sqrt => 1,
            Intrinsic::Abs | Intrinsic::Ctlz | Intrinsic::Cttz => 2,
            Intrinsic::Fshl | Intrinsic::Fshr | Intrinsic::Fma => 3,
            _ => 2,
        }
    }

    /// Returns `true` for integer (or integer-vector) intrinsics.
    pub fn is_integer(self) -> bool {
        !matches!(
            self,
            Intrinsic::Fabs
                | Intrinsic::Sqrt
                | Intrinsic::Minnum
                | Intrinsic::Maxnum
                | Intrinsic::Copysign
                | Intrinsic::Fma
        )
    }

    /// Returns `true` for the min/max family.
    pub fn is_min_max(self) -> bool {
        matches!(self, Intrinsic::Umin | Intrinsic::Umax | Intrinsic::Smin | Intrinsic::Smax)
    }

    /// Returns `true` for commutative intrinsics.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Intrinsic::Umin
                | Intrinsic::Umax
                | Intrinsic::Smin
                | Intrinsic::Smax
                | Intrinsic::Minnum
                | Intrinsic::Maxnum
        )
    }

    /// The full LLVM-style name, e.g. `llvm.umin.i32` or `llvm.smax.v4i32`.
    pub fn full_name(self, ty: &Type) -> String {
        let suffix = match ty {
            Type::Vector(n, elem) => format!("v{n}{elem}"),
            other => other.to_string(),
        };
        format!("llvm.{}.{}", self.short_name(), suffix)
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "llvm.{}", self.short_name())
    }
}

/// The operation performed by an instruction, with its operands.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// Integer binary operation.
    Binary { op: BinOp, lhs: Value, rhs: Value, flags: IntFlags },
    /// Floating-point binary operation.
    FBinary { op: FBinOp, lhs: Value, rhs: Value, fmf: FastMathFlags },
    /// Integer comparison producing `i1` (or a vector of `i1`).
    ICmp { pred: ICmpPred, lhs: Value, rhs: Value },
    /// Floating-point comparison producing `i1` (or a vector of `i1`).
    FCmp { pred: FCmpPred, lhs: Value, rhs: Value },
    /// Conditional select.
    Select { cond: Value, on_true: Value, on_false: Value },
    /// Type cast.
    Cast { op: CastOp, value: Value, flags: IntFlags },
    /// Intrinsic call.
    Call { intrinsic: Intrinsic, args: Vec<Value>, fmf: FastMathFlags },
    /// Memory load through a pointer.
    Load { ptr: Value, align: u32 },
    /// Memory store through a pointer (void result).
    Store { value: Value, ptr: Value, align: u32 },
    /// Address computation: `getelementptr [inbounds] [nuw] elem_ty, ptr base, i64 index`.
    Gep { elem_ty: Type, base: Value, index: Value, inbounds: bool, nuw: bool },
    /// Stack allocation of a single element of `ty`.
    Alloca { ty: Type },
    /// Extract one lane from a vector.
    ExtractElement { vector: Value, index: Value },
    /// Insert a scalar into one lane of a vector.
    InsertElement { vector: Value, element: Value, index: Value },
    /// Lane shuffle of two vectors with a constant mask (`-1` means undef lane).
    ShuffleVector { a: Value, b: Value, mask: Vec<i32> },
    /// SSA phi node with `(value, predecessor)` pairs.
    Phi { incoming: Vec<(Value, BlockId)> },
    /// Stop poison/undef propagation.
    Freeze { value: Value },
    /// Return from the function.
    Ret { value: Option<Value> },
    /// Conditional or unconditional branch.
    Br { cond: Option<Value>, then_block: BlockId, else_block: Option<BlockId> },
    /// Unreachable terminator.
    Unreachable,
}

impl InstKind {
    /// Returns `true` for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(self, InstKind::Ret { .. } | InstKind::Br { .. } | InstKind::Unreachable)
    }

    /// Returns `true` if the instruction reads or writes memory.
    pub fn touches_memory(&self) -> bool {
        matches!(self, InstKind::Load { .. } | InstKind::Store { .. } | InstKind::Alloca { .. })
    }

    /// Returns `true` if removing this instruction (when unused) changes behaviour.
    ///
    /// Stores, terminators and instructions that may trap (division) have side
    /// effects; everything else is freely removable when dead.
    pub fn has_side_effects(&self) -> bool {
        match self {
            InstKind::Store { .. } => true,
            InstKind::Binary { op, .. } if op.is_division() => true,
            k if k.is_terminator() => true,
            _ => false,
        }
    }

    /// The operand values of this instruction, in order.
    pub fn operands(&self) -> Vec<&Value> {
        match self {
            InstKind::Binary { lhs, rhs, .. }
            | InstKind::FBinary { lhs, rhs, .. }
            | InstKind::ICmp { lhs, rhs, .. }
            | InstKind::FCmp { lhs, rhs, .. } => vec![lhs, rhs],
            InstKind::Select { cond, on_true, on_false } => vec![cond, on_true, on_false],
            InstKind::Cast { value, .. } | InstKind::Freeze { value } => vec![value],
            InstKind::Call { args, .. } => args.iter().collect(),
            InstKind::Load { ptr, .. } => vec![ptr],
            InstKind::Store { value, ptr, .. } => vec![value, ptr],
            InstKind::Gep { base, index, .. } => vec![base, index],
            InstKind::Alloca { .. } | InstKind::Unreachable => vec![],
            InstKind::ExtractElement { vector, index } => vec![vector, index],
            InstKind::InsertElement { vector, element, index } => vec![vector, element, index],
            InstKind::ShuffleVector { a, b, .. } => vec![a, b],
            InstKind::Phi { incoming } => incoming.iter().map(|(v, _)| v).collect(),
            InstKind::Ret { value } => value.iter().collect(),
            InstKind::Br { cond, .. } => cond.iter().collect(),
        }
    }

    /// Visits every operand value in order without allocating (the hot-path
    /// companion of [`operands`](Self::operands), used by use-list
    /// maintenance and the worklist driver).
    pub fn for_each_operand(&self, mut f: impl FnMut(&Value)) {
        match self {
            InstKind::Binary { lhs, rhs, .. }
            | InstKind::FBinary { lhs, rhs, .. }
            | InstKind::ICmp { lhs, rhs, .. }
            | InstKind::FCmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Select { cond, on_true, on_false } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            InstKind::Cast { value, .. } | InstKind::Freeze { value } => f(value),
            InstKind::Call { args, .. } => args.iter().for_each(f),
            InstKind::Load { ptr, .. } => f(ptr),
            InstKind::Store { value, ptr, .. } => {
                f(value);
                f(ptr);
            }
            InstKind::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            InstKind::Alloca { .. } | InstKind::Unreachable => {}
            InstKind::ExtractElement { vector, index } => {
                f(vector);
                f(index);
            }
            InstKind::InsertElement { vector, element, index } => {
                f(vector);
                f(element);
                f(index);
            }
            InstKind::ShuffleVector { a, b, .. } => {
                f(a);
                f(b);
            }
            InstKind::Phi { incoming } => incoming.iter().for_each(|(v, _)| f(v)),
            InstKind::Ret { value } => value.iter().for_each(f),
            InstKind::Br { cond, .. } => cond.iter().for_each(f),
        }
    }

    /// Mutable references to the operand values of this instruction, in order.
    pub fn operands_mut(&mut self) -> Vec<&mut Value> {
        match self {
            InstKind::Binary { lhs, rhs, .. }
            | InstKind::FBinary { lhs, rhs, .. }
            | InstKind::ICmp { lhs, rhs, .. }
            | InstKind::FCmp { lhs, rhs, .. } => vec![lhs, rhs],
            InstKind::Select { cond, on_true, on_false } => vec![cond, on_true, on_false],
            InstKind::Cast { value, .. } | InstKind::Freeze { value } => vec![value],
            InstKind::Call { args, .. } => args.iter_mut().collect(),
            InstKind::Load { ptr, .. } => vec![ptr],
            InstKind::Store { value, ptr, .. } => vec![value, ptr],
            InstKind::Gep { base, index, .. } => vec![base, index],
            InstKind::Alloca { .. } | InstKind::Unreachable => vec![],
            InstKind::ExtractElement { vector, index } => vec![vector, index],
            InstKind::InsertElement { vector, element, index } => vec![vector, element, index],
            InstKind::ShuffleVector { a, b, .. } => vec![a, b],
            InstKind::Phi { incoming } => incoming.iter_mut().map(|(v, _)| v).collect(),
            InstKind::Ret { value } => value.iter_mut().collect(),
            InstKind::Br { cond, .. } => cond.iter_mut().collect(),
        }
    }

    /// A short mnemonic identifying the opcode (used by hashing and costs).
    pub fn opcode_name(&self) -> String {
        match self {
            InstKind::Binary { op, .. } => op.mnemonic().to_string(),
            InstKind::FBinary { op, .. } => op.mnemonic().to_string(),
            InstKind::ICmp { .. } => "icmp".to_string(),
            InstKind::FCmp { .. } => "fcmp".to_string(),
            InstKind::Select { .. } => "select".to_string(),
            InstKind::Cast { op, .. } => op.mnemonic().to_string(),
            InstKind::Call { intrinsic, .. } => format!("call.{}", intrinsic.short_name()),
            InstKind::Load { .. } => "load".to_string(),
            InstKind::Store { .. } => "store".to_string(),
            InstKind::Gep { .. } => "getelementptr".to_string(),
            InstKind::Alloca { .. } => "alloca".to_string(),
            InstKind::ExtractElement { .. } => "extractelement".to_string(),
            InstKind::InsertElement { .. } => "insertelement".to_string(),
            InstKind::ShuffleVector { .. } => "shufflevector".to_string(),
            InstKind::Phi { .. } => "phi".to_string(),
            InstKind::Freeze { .. } => "freeze".to_string(),
            InstKind::Ret { .. } => "ret".to_string(),
            InstKind::Br { .. } => "br".to_string(),
            InstKind::Unreachable => "unreachable".to_string(),
        }
    }
}

/// An instruction: an operation, its result type, and its result name.
#[derive(Clone, Debug, PartialEq)]
pub struct Instruction {
    /// The operation and operands.
    pub kind: InstKind,
    /// The result type (`void` for stores, branches, etc.).
    pub ty: Type,
    /// The result name, without the leading `%` (empty for void results).
    pub name: String,
}

impl Instruction {
    /// Creates an instruction.
    pub fn new(kind: InstKind, ty: Type, name: impl Into<String>) -> Self {
        Self { kind, ty, name: name.into() }
    }

    /// Returns `true` if the instruction produces a value.
    pub fn produces_value(&self) -> bool {
        self.ty != Type::Void
    }

    /// Returns `true` for block terminators.
    pub fn is_terminator(&self) -> bool {
        self.kind.is_terminator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_properties() {
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(BinOp::UDiv.is_division());
        assert!(BinOp::Shl.is_shift());
        assert!(BinOp::Xor.is_bitwise());
        assert_eq!(BinOp::Add.allowed_flags(), IntFlags::nuw_nsw());
        assert_eq!(BinOp::LShr.allowed_flags(), IntFlags::exact());
        assert_eq!(BinOp::Or.allowed_flags(), IntFlags::disjoint());
        assert_eq!(BinOp::And.allowed_flags(), IntFlags::none());
        assert_eq!(BinOp::ALL.len(), 13);
    }

    #[test]
    fn icmp_predicate_algebra() {
        assert_eq!(ICmpPred::Slt.swapped(), ICmpPred::Sgt);
        assert_eq!(ICmpPred::Eq.swapped(), ICmpPred::Eq);
        assert_eq!(ICmpPred::Ult.inverted(), ICmpPred::Uge);
        assert_eq!(ICmpPred::Ne.inverted(), ICmpPred::Eq);
        assert!(ICmpPred::Slt.is_signed());
        assert!(!ICmpPred::Ult.is_signed());
        assert!(ICmpPred::Eq.is_equality());
        for p in ICmpPred::ALL {
            assert_eq!(p.inverted().inverted(), p);
            assert_eq!(p.swapped().swapped(), p);
        }
    }

    #[test]
    fn fcmp_predicates() {
        assert!(FCmpPred::Oeq.is_ordered());
        assert!(!FCmpPred::Ueq.is_ordered());
        assert_eq!(FCmpPred::ALL.len(), 16);
        assert_eq!(FCmpPred::Uno.mnemonic(), "uno");
    }

    #[test]
    fn intrinsic_names_and_arity() {
        assert_eq!(Intrinsic::Umin.full_name(&Type::i32()), "llvm.umin.i32");
        assert_eq!(
            Intrinsic::Smax.full_name(&Type::vector(4, Type::i32())),
            "llvm.smax.v4i32"
        );
        assert_eq!(Intrinsic::UaddSat.full_name(&Type::i8()), "llvm.uadd.sat.i8");
        assert_eq!(Intrinsic::from_short_name("umin"), Some(Intrinsic::Umin));
        assert_eq!(Intrinsic::from_short_name("uadd.sat"), Some(Intrinsic::UaddSat));
        assert_eq!(Intrinsic::from_short_name("nonsense"), None);
        assert_eq!(Intrinsic::Abs.arity(), 2);
        assert_eq!(Intrinsic::Ctpop.arity(), 1);
        assert_eq!(Intrinsic::Fshl.arity(), 3);
        assert!(Intrinsic::Umin.is_min_max());
        assert!(Intrinsic::Umin.is_integer());
        assert!(!Intrinsic::Sqrt.is_integer());
    }

    #[test]
    fn instkind_operand_access() {
        let add = InstKind::Binary {
            op: BinOp::Add,
            lhs: Value::Arg(0),
            rhs: Value::int(32, 1),
            flags: IntFlags::none(),
        };
        assert_eq!(add.operands().len(), 2);
        assert_eq!(add.opcode_name(), "add");
        assert!(!add.is_terminator());
        assert!(!add.has_side_effects());

        let ret = InstKind::Ret { value: Some(Value::Arg(0)) };
        assert!(ret.is_terminator());
        assert_eq!(ret.operands().len(), 1);

        let store = InstKind::Store { value: Value::Arg(0), ptr: Value::Arg(1), align: 4 };
        assert!(store.has_side_effects());
        assert!(store.touches_memory());

        let div = InstKind::Binary {
            op: BinOp::UDiv,
            lhs: Value::Arg(0),
            rhs: Value::Arg(1),
            flags: IntFlags::none(),
        };
        assert!(div.has_side_effects());
    }

    #[test]
    fn operand_mutation() {
        let mut sel = InstKind::Select {
            cond: Value::Arg(0),
            on_true: Value::Arg(1),
            on_false: Value::Arg(2),
        };
        for op in sel.operands_mut() {
            *op = Value::int(32, 0);
        }
        assert!(sel.operands().iter().all(|v| v.is_const()));
    }

    #[test]
    fn value_conversions() {
        let v: Value = Constant::int(32, 3).into();
        assert!(v.is_const());
        assert_eq!(v.as_const().unwrap().as_int().unwrap().zext_value(), 3);
        let v: Value = InstId(7).into();
        assert_eq!(v.as_inst(), Some(InstId(7)));
        assert_eq!(Value::Arg(0).as_inst(), None);
    }
}
