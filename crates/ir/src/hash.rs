//! Structural hashing of functions for deduplication.
//!
//! Algorithm 2 of the paper deduplicates extracted instruction sequences by a
//! hash "based on the opcode and operands of each instruction". The hash here
//! is *structural*: it ignores value names and instruction ids, so two
//! sequences that differ only in naming collapse to the same digest, while any
//! difference in opcodes, flags, types, constants or dataflow shape changes it.

use crate::constant::Constant;
use crate::function::Function;
use crate::instruction::{InstId, InstKind, Value};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A structural digest of a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u64);

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

fn hash_value(func: &Function, v: &Value, numbering: &HashMap<InstId, usize>, h: &mut Fnv) {
    match v {
        Value::Arg(i) => {
            "arg".hash(h);
            i.hash(h);
            func.params[*i].ty.to_string().hash(h);
        }
        Value::Inst(id) => {
            "inst".hash(h);
            numbering.get(id).copied().unwrap_or(usize::MAX).hash(h);
        }
        Value::Const(c) => {
            "const".hash(h);
            hash_constant(c, h);
        }
    }
}

fn hash_constant(c: &Constant, h: &mut Fnv) {
    match c {
        Constant::Int(v) => {
            "int".hash(h);
            v.width().hash(h);
            v.zext_value().hash(h);
        }
        Constant::Float(k, v) => {
            "float".hash(h);
            format!("{k}").hash(h);
            v.to_bits().hash(h);
        }
        Constant::NullPtr => "null".hash(h),
        Constant::Undef(t) => {
            "undef".hash(h);
            t.to_string().hash(h);
        }
        Constant::Poison(t) => {
            "poison".hash(h);
            t.to_string().hash(h);
        }
        Constant::Vector(elems) => {
            "vector".hash(h);
            elems.len().hash(h);
            for e in elems {
                hash_constant(e, h);
            }
        }
    }
}

/// Computes the structural digest of a function.
///
/// The digest covers: the signature types; the block structure (block count
/// and per-block instruction counts, so the same instruction stream split
/// across blocks differently hashes differently); and for every placed
/// instruction in layout order its opcode, result type, flags, control-flow
/// targets (branch successors, phi incoming-block ids) and operands
/// (constants by value, instruction operands by their position in layout
/// order, arguments by index). Names never influence the digest.
///
/// Two functions with equal digests are behaviourally interchangeable —
/// modulo hash collision — which is what lets the digest key both the
/// execution engine's dedup cache and the translation validator's
/// compiled-function cache.
pub fn hash_function(func: &Function) -> Digest {
    let mut numbering = HashMap::new();
    for (pos, id) in func.iter_inst_ids().enumerate() {
        numbering.insert(id, pos);
    }
    let mut h = Fnv::new();
    func.ret_ty.to_string().hash(&mut h);
    func.params.len().hash(&mut h);
    for p in &func.params {
        p.ty.to_string().hash(&mut h);
    }
    func.blocks().len().hash(&mut h);
    for block in func.blocks() {
        block.insts.len().hash(&mut h);
    }
    for (_, inst) in func.iter_insts() {
        inst.kind.opcode_name().hash(&mut h);
        inst.ty.to_string().hash(&mut h);
        match &inst.kind {
            InstKind::Binary { flags, .. } | InstKind::Cast { flags, .. } => {
                flags.to_string().hash(&mut h);
            }
            InstKind::FBinary { fmf, .. } => fmf.to_string().hash(&mut h),
            InstKind::Alloca { ty } => ty.to_string().hash(&mut h),
            InstKind::ICmp { pred, .. } => pred.mnemonic().hash(&mut h),
            InstKind::FCmp { pred, .. } => pred.mnemonic().hash(&mut h),
            InstKind::Gep { inbounds, nuw, elem_ty, .. } => {
                inbounds.hash(&mut h);
                nuw.hash(&mut h);
                elem_ty.to_string().hash(&mut h);
            }
            InstKind::ShuffleVector { mask, .. } => mask.hash(&mut h),
            InstKind::Br { then_block, else_block, .. } => {
                then_block.0.hash(&mut h);
                else_block.map(|b| b.0).hash(&mut h);
            }
            InstKind::Phi { incoming } => {
                for (_, bb) in incoming {
                    bb.0.hash(&mut h);
                }
            }
            _ => {}
        }
        for op in inst.kind.operands() {
            hash_value(func, op, &numbering, &mut h);
        }
    }
    Digest(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::{BinOp, Value};
    use crate::parser::parse_function;
    use crate::types::Type;

    fn simple(name: &str, constant: i128, op: BinOp) -> Function {
        let mut b = FunctionBuilder::new(name, Type::i32());
        let x = b.add_param("x", Type::i32());
        let v = b.binary(op, x, Value::int_signed(32, constant));
        b.ret(Some(v));
        b.build()
    }

    #[test]
    fn names_do_not_matter() {
        let a = simple("alpha", 4, BinOp::Add);
        let b = simple("beta", 4, BinOp::Add);
        assert_eq!(hash_function(&a), hash_function(&b));
    }

    #[test]
    fn parsed_and_built_functions_agree() {
        let built = simple("f", 7, BinOp::Mul);
        let parsed = parse_function("define i32 @f(i32 %whatever) {\n %r = mul i32 %whatever, 7\n ret i32 %r\n}").unwrap();
        assert_eq!(hash_function(&built), hash_function(&parsed));
    }

    #[test]
    fn structure_changes_the_digest() {
        let base = simple("f", 4, BinOp::Add);
        assert_ne!(hash_function(&base), hash_function(&simple("f", 5, BinOp::Add)));
        assert_ne!(hash_function(&base), hash_function(&simple("f", 4, BinOp::Sub)));

        // Different flags change the digest.
        let flagged = parse_function("define i32 @f(i32 %x) {\n %r = add nsw i32 %x, 4\n ret i32 %r\n}").unwrap();
        assert_ne!(hash_function(&base), hash_function(&flagged));

        // Fast-math flags are execution-relevant (nnan turns NaN operands
        // into poison) and must change the digest.
        let plain_fadd = parse_function(
            "define double @f(double %x, double %y) {\n %r = fadd double %x, %y\n ret double %r\n}",
        )
        .unwrap();
        let nnan_fadd = parse_function(
            "define double @f(double %x, double %y) {\n %r = fadd nnan double %x, %y\n ret double %r\n}",
        )
        .unwrap();
        assert_ne!(hash_function(&plain_fadd), hash_function(&nnan_fadd));

        // The allocated type decides the allocation size (and therefore
        // which accesses are UB): it must change the digest too.
        let small_alloca = parse_function(
            "define void @f() {\n %p = alloca i8\n ret void\n}",
        )
        .unwrap();
        let big_alloca = parse_function(
            "define void @f() {\n %p = alloca i64\n ret void\n}",
        )
        .unwrap();
        assert_ne!(hash_function(&small_alloca), hash_function(&big_alloca));

        // Different argument types change the digest.
        let wide = parse_function("define i64 @f(i64 %x) {\n %r = add i64 %x, 4\n ret i64 %r\n}").unwrap();
        assert_ne!(hash_function(&base), hash_function(&wide));
    }

    #[test]
    fn dataflow_shape_matters() {
        // x+x vs x+y with an extra unused parameter shaping the same opcode list.
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let _y = b.add_param("y", Type::i32());
        let v = b.add(x.clone(), x);
        b.ret(Some(v));
        let xx = b.build();

        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let y = b.add_param("y", Type::i32());
        let v = b.add(x, y);
        b.ret(Some(v));
        let xy = b.build();
        assert_ne!(hash_function(&xx), hash_function(&xy));
    }

    #[test]
    fn control_flow_shape_matters() {
        // Same instruction stream, opposite branch targets.
        let t1 = parse_function(
            "define i32 @f(i1 %c) {\n\
             entry:\n  br i1 %c, label %a, label %b\n\
             a:\n  ret i32 1\n\
             b:\n  ret i32 2\n}",
        )
        .unwrap();
        let t2 = parse_function(
            "define i32 @f(i1 %c) {\n\
             entry:\n  br i1 %c, label %b, label %a\n\
             a:\n  ret i32 1\n\
             b:\n  ret i32 2\n}",
        )
        .unwrap();
        assert_ne!(hash_function(&t1), hash_function(&t2));

        // Renaming the successor blocks (same shape) keeps the digest.
        let t3 = parse_function(
            "define i32 @f(i1 %c) {\n\
             entry:\n  br i1 %c, label %x, label %y\n\
             x:\n  ret i32 1\n\
             y:\n  ret i32 2\n}",
        )
        .unwrap();
        assert_eq!(hash_function(&t1), hash_function(&t3));

        // Phi incoming-block swap changes the digest.
        let p1 = parse_function(
            "define i32 @f(i1 %c) {\n\
             entry:\n  br i1 %c, label %a, label %b\n\
             a:\n  br label %join\n\
             b:\n  br label %join\n\
             join:\n  %r = phi i32 [ 1, %a ], [ 2, %b ]\n  ret i32 %r\n}",
        )
        .unwrap();
        let p2 = parse_function(
            "define i32 @f(i1 %c) {\n\
             entry:\n  br i1 %c, label %a, label %b\n\
             a:\n  br label %join\n\
             b:\n  br label %join\n\
             join:\n  %r = phi i32 [ 1, %b ], [ 2, %a ]\n  ret i32 %r\n}",
        )
        .unwrap();
        assert_ne!(hash_function(&p1), hash_function(&p2));
    }

    #[test]
    fn comparisons_and_vectors_hash_distinctly() {
        let f1 = parse_function(
            "define i1 @f(i32 %x) {\n %c = icmp slt i32 %x, 0\n ret i1 %c\n}",
        )
        .unwrap();
        let f2 = parse_function(
            "define i1 @f(i32 %x) {\n %c = icmp sgt i32 %x, 0\n ret i1 %c\n}",
        )
        .unwrap();
        assert_ne!(hash_function(&f1), hash_function(&f2));

        let v1 = parse_function(
            "define <4 x i32> @f(<4 x i32> %x) {\n %r = add <4 x i32> %x, splat (i32 1)\n ret <4 x i32> %r\n}",
        )
        .unwrap();
        let v2 = parse_function(
            "define <4 x i32> @f(<4 x i32> %x) {\n %r = add <4 x i32> %x, zeroinitializer\n ret <4 x i32> %r\n}",
        )
        .unwrap();
        assert_ne!(hash_function(&v1), hash_function(&v2));
    }
}
