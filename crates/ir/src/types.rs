//! The IR type system.
//!
//! Mirrors the subset of LLVM's first-class types that the LPO pipeline
//! manipulates: arbitrary-width integers, three floating-point widths, opaque
//! pointers, fixed-length vectors, and `void` (for functions without a return
//! value).
//!
//! # Examples
//!
//! ```
//! use lpo_ir::types::Type;
//!
//! let v4i32 = Type::vector(4, Type::i32());
//! assert_eq!(v4i32.to_string(), "<4 x i32>");
//! assert_eq!(v4i32.scalar_type(), &Type::i32());
//! assert_eq!(v4i32.size_in_bits(), 128);
//! ```

use std::fmt;

/// Floating-point kinds supported by the IR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FloatKind {
    /// 16-bit IEEE-754 half precision.
    Half,
    /// 32-bit IEEE-754 single precision.
    Float,
    /// 64-bit IEEE-754 double precision.
    Double,
}

impl FloatKind {
    /// Size of the format in bits.
    pub fn bits(self) -> u32 {
        match self {
            FloatKind::Half => 16,
            FloatKind::Float => 32,
            FloatKind::Double => 64,
        }
    }
}

impl fmt::Display for FloatKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloatKind::Half => write!(f, "half"),
            FloatKind::Float => write!(f, "float"),
            FloatKind::Double => write!(f, "double"),
        }
    }
}

/// A first-class IR type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// The `void` type (function results only).
    Void,
    /// An integer type with the given bit width (`i1` … `i128`).
    Int(u32),
    /// A floating-point type.
    Float(FloatKind),
    /// An opaque pointer (`ptr`).
    Ptr,
    /// A fixed-length vector `<N x elem>`. The element must be a scalar type.
    Vector(u32, Box<Type>),
}

impl Type {
    /// The boolean type `i1`.
    pub fn i1() -> Type {
        Type::Int(1)
    }

    /// The 8-bit integer type.
    pub fn i8() -> Type {
        Type::Int(8)
    }

    /// The 16-bit integer type.
    pub fn i16() -> Type {
        Type::Int(16)
    }

    /// The 32-bit integer type.
    pub fn i32() -> Type {
        Type::Int(32)
    }

    /// The 64-bit integer type.
    pub fn i64() -> Type {
        Type::Int(64)
    }

    /// The single-precision floating point type.
    pub fn float() -> Type {
        Type::Float(FloatKind::Float)
    }

    /// The double-precision floating point type.
    pub fn double() -> Type {
        Type::Float(FloatKind::Double)
    }

    /// Builds a vector type `<lanes x elem>`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `elem` is not a scalar (int, float or ptr).
    pub fn vector(lanes: u32, elem: Type) -> Type {
        assert!(lanes > 0, "vector must have at least one lane");
        assert!(elem.is_scalar(), "vector element must be a scalar type");
        Type::Vector(lanes, Box::new(elem))
    }

    /// Returns `true` for integer, floating-point or pointer types.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int(_) | Type::Float(_) | Type::Ptr)
    }

    /// Returns `true` for integer types (scalar only).
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// Returns `true` for `i1`.
    pub fn is_bool(&self) -> bool {
        matches!(self, Type::Int(1))
    }

    /// Returns `true` for floating-point types (scalar only).
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float(_))
    }

    /// Returns `true` for the pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// Returns `true` for vector types.
    pub fn is_vector(&self) -> bool {
        matches!(self, Type::Vector(..))
    }

    /// Returns `true` if the type is an integer or a vector of integers.
    pub fn is_int_or_int_vector(&self) -> bool {
        self.scalar_type().is_int()
    }

    /// Returns `true` if the type is a float or a vector of floats.
    pub fn is_float_or_float_vector(&self) -> bool {
        self.scalar_type().is_float()
    }

    /// Returns `true` if the type is `i1` or a vector of `i1`.
    pub fn is_bool_or_bool_vector(&self) -> bool {
        self.scalar_type().is_bool()
    }

    /// The element type for vectors, or the type itself for scalars.
    pub fn scalar_type(&self) -> &Type {
        match self {
            Type::Vector(_, elem) => elem,
            other => other,
        }
    }

    /// The number of vector lanes, or `None` for non-vector types.
    pub fn lanes(&self) -> Option<u32> {
        match self {
            Type::Vector(n, _) => Some(*n),
            _ => None,
        }
    }

    /// The integer bit width of the scalar type, or `None` for non-integers.
    pub fn int_width(&self) -> Option<u32> {
        match self.scalar_type() {
            Type::Int(w) => Some(*w),
            _ => None,
        }
    }

    /// Total size of a value of this type in bits (pointers count as 64 bits).
    ///
    /// # Panics
    ///
    /// Panics for `void`, which has no size.
    pub fn size_in_bits(&self) -> u32 {
        match self {
            Type::Void => panic!("void has no size"),
            Type::Int(w) => *w,
            Type::Float(k) => k.bits(),
            Type::Ptr => 64,
            Type::Vector(n, elem) => n * elem.size_in_bits(),
        }
    }

    /// Total size in bytes, rounding sub-byte types up to one byte.
    pub fn size_in_bytes(&self) -> u32 {
        self.size_in_bits().div_ceil(8)
    }

    /// Builds a type with the same "shape" (scalar vs. vector with identical
    /// lane count) but a different scalar type. Used by casts and comparisons.
    pub fn with_scalar(&self, scalar: Type) -> Type {
        match self {
            Type::Vector(n, _) => Type::vector(*n, scalar),
            _ => scalar,
        }
    }

    /// Returns `true` if two types have the same vector shape (both scalars, or
    /// vectors with identical lane counts).
    pub fn same_shape(&self, other: &Type) -> bool {
        self.lanes() == other.lanes()
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int(w) => write!(f, "i{w}"),
            Type::Float(k) => write!(f, "{k}"),
            Type::Ptr => write!(f, "ptr"),
            Type::Vector(n, elem) => write!(f, "<{n} x {elem}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_llvm_syntax() {
        assert_eq!(Type::i1().to_string(), "i1");
        assert_eq!(Type::Int(33).to_string(), "i33");
        assert_eq!(Type::double().to_string(), "double");
        assert_eq!(Type::Float(FloatKind::Half).to_string(), "half");
        assert_eq!(Type::Ptr.to_string(), "ptr");
        assert_eq!(Type::vector(4, Type::i8()).to_string(), "<4 x i8>");
        assert_eq!(Type::Void.to_string(), "void");
    }

    #[test]
    fn predicates() {
        assert!(Type::i32().is_int());
        assert!(Type::i1().is_bool());
        assert!(!Type::i8().is_bool());
        assert!(Type::float().is_float());
        assert!(Type::Ptr.is_ptr());
        assert!(Type::vector(2, Type::i32()).is_vector());
        assert!(Type::vector(2, Type::i32()).is_int_or_int_vector());
        assert!(Type::vector(2, Type::double()).is_float_or_float_vector());
        assert!(Type::vector(8, Type::i1()).is_bool_or_bool_vector());
        assert!(!Type::Ptr.is_int_or_int_vector());
    }

    #[test]
    fn scalar_and_lanes() {
        let v = Type::vector(4, Type::i32());
        assert_eq!(v.scalar_type(), &Type::i32());
        assert_eq!(v.lanes(), Some(4));
        assert_eq!(Type::i32().lanes(), None);
        assert_eq!(v.int_width(), Some(32));
        assert_eq!(Type::double().int_width(), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(Type::i1().size_in_bits(), 1);
        assert_eq!(Type::i1().size_in_bytes(), 1);
        assert_eq!(Type::i64().size_in_bytes(), 8);
        assert_eq!(Type::Ptr.size_in_bits(), 64);
        assert_eq!(Type::vector(4, Type::i32()).size_in_bytes(), 16);
        assert_eq!(Type::Float(FloatKind::Half).size_in_bits(), 16);
    }

    #[test]
    #[should_panic(expected = "void has no size")]
    fn void_has_no_size() {
        let _ = Type::Void.size_in_bits();
    }

    #[test]
    #[should_panic(expected = "vector element must be a scalar")]
    fn nested_vectors_rejected() {
        let _ = Type::vector(2, Type::vector(2, Type::i8()));
    }

    #[test]
    fn shape_helpers() {
        let v = Type::vector(4, Type::i32());
        assert_eq!(v.with_scalar(Type::i1()), Type::vector(4, Type::i1()));
        assert_eq!(Type::i32().with_scalar(Type::i1()), Type::i1());
        assert!(v.same_shape(&Type::vector(4, Type::i8())));
        assert!(!v.same_shape(&Type::vector(2, Type::i32())));
        assert!(Type::i32().same_shape(&Type::i64()));
    }
}
