//! Parsing of the textual IR syntax produced by [`crate::printer`].
//!
//! The parser doubles as the "syntax check" stage of the LPO pipeline: when
//! the (simulated) LLM proposes a candidate as text, the pipeline parses it
//! here, and on failure the [`ParseError`] — formatted like an `opt` error
//! message, pointing at the offending token — is fed back to the model
//! (step ⑥ in Figure 2 of the paper).
//!
//! # Examples
//!
//! ```
//! use lpo_ir::parser::parse_function;
//!
//! let f = parse_function(
//!     "define i8 @tgt(i32 %0) {\n\
//!        %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
//!        %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
//!        %4 = trunc nuw i32 %3 to i8\n\
//!        ret i8 %4\n\
//!      }",
//! ).unwrap();
//! assert_eq!(f.instruction_count(), 3);
//! ```

use crate::apint::ApInt;
use crate::constant::Constant;
use crate::flags::{FastMathFlags, IntFlags};
use crate::function::{Function, Param};
use crate::instruction::{
    BinOp, BlockId, CastOp, FBinOp, FCmpPred, ICmpPred, InstKind, Instruction, Intrinsic, Value,
};
use crate::module::Module;
use crate::types::{FloatKind, Type};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, formatted like an `opt` diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human readable description, e.g. `expected instruction opcode`.
    pub message: String,
    /// 1-based line number of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// The text of the offending line.
    pub line_text: String,
}

impl ParseError {
    fn new(message: impl Into<String>, line: usize, column: usize, line_text: &str) -> Self {
        Self { message: message.into(), line, column, line_text: line_text.to_string() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {}", self.message)?;
        writeln!(f, "{}", self.line_text)?;
        let caret_pos = self.column.saturating_sub(1);
        write!(f, "{}^", " ".repeat(caret_pos))
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    /// Bare identifier / keyword (`add`, `i32`, `label`, `x86`, …).
    Word(String),
    /// Local value or label reference, without the `%`.
    Local(String),
    /// Global reference, without the `@`.
    Global(String),
    /// Integer literal (may be negative).
    Int(i128),
    /// Floating point literal.
    Float(f64),
    /// Punctuation: one of `( ) { } [ ] < > , = :`.
    Punct(char),
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    line: usize,
    column: usize,
}

struct Lexer<'a> {
    src: &'a str,
    lines: Vec<&'a str>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, lines: src.lines().collect() }
    }

    fn line_text(&self, line: usize) -> &str {
        self.lines.get(line.saturating_sub(1)).copied().unwrap_or("")
    }

    fn tokenize(&self) -> Result<Vec<SpannedTok>, ParseError> {
        let mut toks = Vec::new();
        for (line_idx, line) in self.src.lines().enumerate() {
            let line_no = line_idx + 1;
            let bytes = line.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                let c = bytes[i] as char;
                let column = i + 1;
                if c.is_whitespace() {
                    i += 1;
                    continue;
                }
                if c == ';' {
                    break; // comment to end of line
                }
                match c {
                    '(' | ')' | '{' | '}' | '[' | ']' | '<' | '>' | ',' | '=' | ':' | '*' => {
                        toks.push(SpannedTok { tok: Tok::Punct(c), line: line_no, column });
                        i += 1;
                    }
                    '%' | '@' => {
                        let start = i + 1;
                        let mut j = start;
                        if j < bytes.len() && bytes[j] as char == '"' {
                            // quoted name
                            j += 1;
                            while j < bytes.len() && bytes[j] as char != '"' {
                                j += 1;
                            }
                            let name = line[start + 1..j].to_string();
                            j += 1;
                            let tok = if c == '%' { Tok::Local(name) } else { Tok::Global(name) };
                            toks.push(SpannedTok { tok, line: line_no, column });
                            i = j;
                            continue;
                        }
                        while j < bytes.len() {
                            let cj = bytes[j] as char;
                            if cj.is_alphanumeric() || cj == '_' || cj == '.' || cj == '-' {
                                j += 1;
                            } else {
                                break;
                            }
                        }
                        if j == start {
                            return Err(ParseError::new(
                                "expected a name after sigil",
                                line_no,
                                column,
                                line,
                            ));
                        }
                        let name = line[start..j].to_string();
                        let tok = if c == '%' { Tok::Local(name) } else { Tok::Global(name) };
                        toks.push(SpannedTok { tok, line: line_no, column });
                        i = j;
                    }
                    '-' | '+' | '0'..='9' => {
                        let start = i;
                        let mut j = i;
                        if c == '-' || c == '+' {
                            j += 1;
                        }
                        let mut is_float = false;
                        let mut is_hex = false;
                        if j + 1 < bytes.len() && bytes[j] as char == '0' && (bytes[j + 1] as char == 'x' || bytes[j + 1] as char == 'X') {
                            is_hex = true;
                            j += 2;
                            while j < bytes.len() && (bytes[j] as char).is_ascii_hexdigit() {
                                j += 1;
                            }
                        } else {
                            while j < bytes.len() {
                                let cj = bytes[j] as char;
                                if cj.is_ascii_digit() {
                                    j += 1;
                                } else if cj == '.' && !is_float {
                                    // A '.' must be followed by a digit to be part of a number
                                    if j + 1 < bytes.len() && (bytes[j + 1] as char).is_ascii_digit() {
                                        is_float = true;
                                        j += 1;
                                    } else {
                                        break;
                                    }
                                } else if (cj == 'e' || cj == 'E')
                                    && j + 1 < bytes.len()
                                    && ((bytes[j + 1] as char).is_ascii_digit()
                                        || bytes[j + 1] as char == '+'
                                        || bytes[j + 1] as char == '-')
                                {
                                    is_float = true;
                                    j += 2;
                                } else {
                                    break;
                                }
                            }
                        }
                        let text = &line[start..j];
                        let tok = if is_hex {
                            // LLVM prints double constants as 0x<16 hex digits> (IEEE bits).
                            let digits = &text[text.find('x').unwrap_or(1) + 1..];
                            match u64::from_str_radix(digits, 16) {
                                Ok(bits) if digits.len() > 8 => Tok::Float(f64::from_bits(bits)),
                                Ok(bits) => Tok::Int(bits as i128),
                                Err(_) => {
                                    return Err(ParseError::new(
                                        format!("invalid hexadecimal literal '{text}'"),
                                        line_no,
                                        column,
                                        line,
                                    ))
                                }
                            }
                        } else if is_float {
                            match text.parse::<f64>() {
                                Ok(v) => Tok::Float(v),
                                Err(_) => {
                                    return Err(ParseError::new(
                                        format!("invalid floating point literal '{text}'"),
                                        line_no,
                                        column,
                                        line,
                                    ))
                                }
                            }
                        } else {
                            match text.parse::<i128>() {
                                Ok(v) => Tok::Int(v),
                                Err(_) => {
                                    return Err(ParseError::new(
                                        format!("invalid integer literal '{text}'"),
                                        line_no,
                                        column,
                                        line,
                                    ))
                                }
                            }
                        };
                        toks.push(SpannedTok { tok, line: line_no, column });
                        i = j;
                    }
                    _ if c.is_alphabetic() || c == '_' => {
                        let start = i;
                        let mut j = i;
                        while j < bytes.len() {
                            let cj = bytes[j] as char;
                            if cj.is_alphanumeric() || cj == '_' || cj == '.' {
                                j += 1;
                            } else {
                                break;
                            }
                        }
                        toks.push(SpannedTok {
                            tok: Tok::Word(line[start..j].to_string()),
                            line: line_no,
                            column,
                        });
                        i = j;
                    }
                    _ => {
                        return Err(ParseError::new(
                            format!("unexpected character '{c}'"),
                            line_no,
                            column,
                            line,
                        ))
                    }
                }
            }
        }
        Ok(toks)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    toks: Vec<SpannedTok>,
    pos: usize,
    lexer: Lexer<'a>,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> PResult<Self> {
        let lexer = Lexer::new(src);
        let toks = lexer.tokenize()?;
        Ok(Self { toks, pos: 0, lexer })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, offset: usize) -> Option<&Tok> {
        self.toks.get(self.pos + offset).map(|t| &t.tok)
    }

    fn span(&self) -> (usize, usize) {
        match self.toks.get(self.pos).or_else(|| self.toks.last()) {
            Some(t) => (t.line, t.column),
            None => (1, 1),
        }
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.span();
        ParseError::new(message, line, column, self.lexer.line_text(line))
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> PResult<()> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected '{c}'")))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Word(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> PResult<()> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected '{word}'")))
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    // --- types ---------------------------------------------------------------

    fn parse_type(&mut self) -> PResult<Type> {
        if self.eat_punct('<') {
            let lanes = match self.bump() {
                Some(Tok::Int(n)) if n > 0 => n as u32,
                _ => return Err(self.error_here("expected vector lane count")),
            };
            self.expect_word("x")?;
            let elem = self.parse_type()?;
            self.expect_punct('>')?;
            if !elem.is_scalar() {
                return Err(self.error_here("vector element must be a scalar type"));
            }
            return Ok(Type::vector(lanes, elem));
        }
        match self.peek().cloned() {
            Some(Tok::Word(w)) => {
                let ty = if w == "void" {
                    Type::Void
                } else if w == "ptr" {
                    Type::Ptr
                } else if w == "half" {
                    Type::Float(FloatKind::Half)
                } else if w == "float" {
                    Type::Float(FloatKind::Float)
                } else if w == "double" {
                    Type::Float(FloatKind::Double)
                } else if let Some(width) = w.strip_prefix('i').and_then(|n| n.parse::<u32>().ok()) {
                    if width == 0 || width > ApInt::MAX_WIDTH {
                        return Err(self.error_here(format!("unsupported integer width 'i{width}'")));
                    }
                    Type::Int(width)
                } else {
                    return Err(self.error_here(format!("expected type, found '{w}'")));
                };
                self.pos += 1;
                Ok(ty)
            }
            _ => Err(self.error_here("expected type")),
        }
    }

    // --- constants -------------------------------------------------------------

    fn parse_constant(&mut self, ty: &Type) -> PResult<Constant> {
        match self.peek().cloned() {
            Some(Tok::Word(w)) if w == "undef" => {
                self.pos += 1;
                Ok(Constant::Undef(ty.clone()))
            }
            Some(Tok::Word(w)) if w == "poison" => {
                self.pos += 1;
                Ok(Constant::Poison(ty.clone()))
            }
            Some(Tok::Word(w)) if w == "zeroinitializer" => {
                self.pos += 1;
                Ok(Constant::zero(ty))
            }
            Some(Tok::Word(w)) if w == "null" && ty.is_ptr() => {
                self.pos += 1;
                Ok(Constant::NullPtr)
            }
            Some(Tok::Word(w)) if w == "true" || w == "false" => {
                self.pos += 1;
                Ok(Constant::bool(w == "true"))
            }
            Some(Tok::Word(w)) if w == "splat" => {
                self.pos += 1;
                self.expect_punct('(')?;
                let elem_ty = self.parse_type()?;
                let elem = self.parse_constant(&elem_ty)?;
                self.expect_punct(')')?;
                let lanes = ty
                    .lanes()
                    .ok_or_else(|| self.error_here("splat constant requires a vector type"))?;
                Ok(Constant::splat(lanes, elem))
            }
            Some(Tok::Word(w)) if w == "nan" => {
                self.pos += 1;
                Ok(self.float_constant(ty, f64::NAN)?)
            }
            Some(Tok::Word(w)) if w == "inf" => {
                self.pos += 1;
                Ok(self.float_constant(ty, f64::INFINITY)?)
            }
            Some(Tok::Int(v)) => {
                self.pos += 1;
                match ty.scalar_type() {
                    Type::Int(w) => Ok(Constant::Int(ApInt::from_i128(*w, v))),
                    Type::Float(k) => Ok(Constant::Float(*k, v as f64)),
                    _ => Err(self.error_here(format!("integer constant is not valid for type '{ty}'"))),
                }
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                self.float_constant(ty, v)
            }
            Some(Tok::Punct('<')) => {
                self.pos += 1;
                let mut elems = Vec::new();
                loop {
                    let elem_ty = self.parse_type()?;
                    let c = self.parse_constant(&elem_ty)?;
                    elems.push(c);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct('>')?;
                Ok(Constant::Vector(elems))
            }
            _ => Err(self.error_here("expected constant value")),
        }
    }

    fn float_constant(&self, ty: &Type, v: f64) -> PResult<Constant> {
        match ty.scalar_type() {
            Type::Float(k) => Ok(Constant::Float(*k, v)),
            _ => Err(self.error_here(format!("floating point constant is not valid for type '{ty}'"))),
        }
    }

    // --- flag helpers -------------------------------------------------------------

    fn parse_int_flags(&mut self) -> IntFlags {
        let mut flags = IntFlags::none();
        loop {
            if self.eat_word("nuw") {
                flags.nuw = true;
            } else if self.eat_word("nsw") {
                flags.nsw = true;
            } else if self.eat_word("exact") {
                flags.exact = true;
            } else if self.eat_word("disjoint") {
                flags.disjoint = true;
            } else if self.eat_word("nneg") {
                flags.nneg = true;
            } else {
                break;
            }
        }
        flags
    }

    fn parse_fast_math_flags(&mut self) -> FastMathFlags {
        let mut fmf = FastMathFlags::none();
        loop {
            if self.eat_word("fast") {
                fmf = FastMathFlags::fast();
            } else if self.eat_word("nnan") {
                fmf.nnan = true;
            } else if self.eat_word("ninf") {
                fmf.ninf = true;
            } else if self.eat_word("nsz") {
                fmf.nsz = true;
            } else if self.eat_word("reassoc") {
                fmf.reassoc = true;
            } else if self.eat_word("arcp") || self.eat_word("contract") || self.eat_word("afn") {
                // accepted and ignored (not modelled)
            } else {
                break;
            }
        }
        fmf
    }
}

// ---------------------------------------------------------------------------
// Function-level parsing
// ---------------------------------------------------------------------------

struct FunctionParser<'a, 'b> {
    p: &'b mut Parser<'a>,
    func: Function,
    /// Values already defined: name → value.
    defs: HashMap<String, Value>,
    /// Block label → id (labels are pre-registered to allow forward branches).
    blocks: HashMap<String, BlockId>,
    /// Phi operands that referenced values not yet defined: (inst, operand index, name).
    pending_phi_values: Vec<(crate::instruction::InstId, usize, String, usize, usize)>,
}

impl<'a, 'b> FunctionParser<'a, 'b> {
    fn parse(p: &'b mut Parser<'a>) -> PResult<Function> {
        p.expect_word("define")?;
        let ret_ty = p.parse_type()?;
        let name = match p.bump() {
            Some(Tok::Global(g)) => g,
            _ => return Err(p.error_here("expected function name")),
        };
        p.expect_punct('(')?;
        let mut func = Function::empty(name, ret_ty);
        if !p.eat_punct(')') {
            loop {
                let ty = p.parse_type()?;
                let pname = match p.bump() {
                    Some(Tok::Local(l)) => l,
                    _ => return Err(p.error_here("expected parameter name")),
                };
                func.params.push(Param { name: pname, ty });
                if !p.eat_punct(',') {
                    break;
                }
            }
            p.expect_punct(')')?;
        }
        p.expect_punct('{')?;

        let mut this = FunctionParser {
            p,
            func,
            defs: HashMap::new(),
            blocks: HashMap::new(),
            pending_phi_values: Vec::new(),
        };
        for (i, param) in this.func.params.iter().enumerate() {
            this.defs.insert(param.name.clone(), Value::Arg(i));
        }
        this.parse_body()?;
        this.resolve_pending_phis()?;
        Ok(this.func)
    }

    fn current_or_new_block(&mut self, label: Option<String>) -> BlockId {
        match label {
            Some(name) => self.lookup_block(&name),
            None => {
                if self.func.blocks().is_empty() {
                    let id = self.func.add_block("entry");
                    self.blocks.insert("entry".to_string(), id);
                    id
                } else {
                    BlockId(self.func.blocks().len() as u32 - 1)
                }
            }
        }
    }

    fn lookup_block(&mut self, name: &str) -> BlockId {
        if let Some(id) = self.blocks.get(name) {
            return *id;
        }
        let id = self.func.add_block(name);
        self.blocks.insert(name.to_string(), id);
        id
    }

    fn parse_body(&mut self) -> PResult<()> {
        let mut current = self.current_or_new_block(None);
        loop {
            if self.p.eat_punct('}') {
                break;
            }
            if self.p.at_end() {
                return Err(self.p.error_here("expected '}' to close function body"));
            }
            // A block label: `word ':'` or `%N ':'` at statement start.
            if let (Some(tok), Some(Tok::Punct(':'))) = (self.p.peek().cloned(), self.p.peek_at(1)) {
                let label = match tok {
                    Tok::Word(w) => Some(w),
                    Tok::Local(l) => Some(l),
                    Tok::Int(n) => Some(n.to_string()),
                    _ => None,
                };
                if let Some(label) = label {
                    self.p.pos += 2;
                    current = self.lookup_block(&label);
                    continue;
                }
            }
            self.parse_instruction(current)?;
        }
        Ok(())
    }

    fn define(&mut self, name: &str, value: Value) {
        self.defs.insert(name.to_string(), value);
    }

    fn lookup_value(&self, name: &str) -> PResult<Value> {
        self.defs
            .get(name)
            .cloned()
            .ok_or_else(|| self.p.error_here(format!("use of undefined value '%{name}'")))
    }

    /// Parses an operand of a known type: a local reference or a constant.
    fn parse_operand(&mut self, ty: &Type) -> PResult<Value> {
        match self.p.peek().cloned() {
            Some(Tok::Local(name)) => {
                self.p.pos += 1;
                self.lookup_value(&name)
            }
            _ => Ok(Value::Const(self.p.parse_constant(ty)?)),
        }
    }

    /// Parses `<type> <operand>`.
    fn parse_typed_operand(&mut self) -> PResult<(Type, Value)> {
        let ty = self.p.parse_type()?;
        let v = self.parse_operand(&ty)?;
        Ok((ty, v))
    }

    fn eat_align(&mut self) -> u32 {
        if self.p.eat_punct(',')
            && self.p.eat_word("align") {
                if let Some(Tok::Int(n)) = self.p.peek().cloned() {
                    self.p.pos += 1;
                    return n as u32;
                }
            }
        1
    }

    fn parse_instruction(&mut self, block: BlockId) -> PResult<()> {
        // Optional result: `%name =`
        let mut result_name = None;
        if let (Some(Tok::Local(name)), Some(Tok::Punct('='))) = (self.p.peek().cloned(), self.p.peek_at(1)) {
            result_name = Some(name);
            self.p.pos += 2;
        }

        // `tail call` → skip the `tail` marker.
        if matches!(self.p.peek(), Some(Tok::Word(w)) if w == "tail")
            && matches!(self.p.peek_at(1), Some(Tok::Word(w)) if w == "call")
        {
            self.p.pos += 1;
        }

        let opcode = match self.p.peek().cloned() {
            Some(Tok::Word(w)) => w,
            _ => return Err(self.p.error_here("expected instruction opcode")),
        };

        let (kind, ty) = self.parse_opcode_body(&opcode, block)?;
        let name = match (&result_name, ty != Type::Void) {
            (Some(n), true) => n.clone(),
            (None, true) => format!("v{}", self.func.total_instruction_count()),
            _ => String::new(),
        };
        let id = self.func.append_inst(block, Instruction::new(kind, ty.clone(), name.clone()));
        if ty != Type::Void {
            self.define(&name, Value::Inst(id));
            if let Some(orig) = result_name {
                if orig != name {
                    self.define(&orig, Value::Inst(id));
                }
            }
        }
        Ok(())
    }

    fn parse_opcode_body(&mut self, opcode: &str, _block: BlockId) -> PResult<(InstKind, Type)> {
        // Integer binary ops
        if let Some(op) = BinOp::ALL.iter().copied().find(|o| o.mnemonic() == opcode) {
            self.p.pos += 1;
            let flags = self.p.parse_int_flags();
            let ty = self.p.parse_type()?;
            let lhs = self.parse_operand(&ty)?;
            self.p.expect_punct(',')?;
            let rhs = self.parse_operand(&ty)?;
            return Ok((InstKind::Binary { op, lhs, rhs, flags }, ty));
        }
        // Float binary ops
        if let Some(op) = FBinOp::ALL.iter().copied().find(|o| o.mnemonic() == opcode) {
            self.p.pos += 1;
            let fmf = self.p.parse_fast_math_flags();
            let ty = self.p.parse_type()?;
            let lhs = self.parse_operand(&ty)?;
            self.p.expect_punct(',')?;
            let rhs = self.parse_operand(&ty)?;
            return Ok((InstKind::FBinary { op, lhs, rhs, fmf }, ty));
        }
        match opcode {
            "icmp" => {
                self.p.pos += 1;
                let pred_word = match self.p.bump() {
                    Some(Tok::Word(w)) => w,
                    _ => return Err(self.p.error_here("expected icmp predicate")),
                };
                let pred = ICmpPred::ALL
                    .iter()
                    .copied()
                    .find(|p| p.mnemonic() == pred_word)
                    .ok_or_else(|| self.p.error_here(format!("invalid icmp predicate '{pred_word}'")))?;
                let ty = self.p.parse_type()?;
                let lhs = self.parse_operand(&ty)?;
                self.p.expect_punct(',')?;
                let rhs = self.parse_operand(&ty)?;
                Ok((InstKind::ICmp { pred, lhs, rhs }, ty.with_scalar(Type::i1())))
            }
            "fcmp" => {
                self.p.pos += 1;
                let _fmf = self.p.parse_fast_math_flags();
                let pred_word = match self.p.bump() {
                    Some(Tok::Word(w)) => w,
                    _ => return Err(self.p.error_here("expected fcmp predicate")),
                };
                let pred = FCmpPred::ALL
                    .iter()
                    .copied()
                    .find(|p| p.mnemonic() == pred_word)
                    .ok_or_else(|| self.p.error_here(format!("invalid fcmp predicate '{pred_word}'")))?;
                let ty = self.p.parse_type()?;
                let lhs = self.parse_operand(&ty)?;
                self.p.expect_punct(',')?;
                let rhs = self.parse_operand(&ty)?;
                Ok((InstKind::FCmp { pred, lhs, rhs }, ty.with_scalar(Type::i1())))
            }
            "select" => {
                self.p.pos += 1;
                let (_, cond) = self.parse_typed_operand()?;
                self.p.expect_punct(',')?;
                let (true_ty, on_true) = self.parse_typed_operand()?;
                self.p.expect_punct(',')?;
                let (_, on_false) = self.parse_typed_operand()?;
                Ok((InstKind::Select { cond, on_true, on_false }, true_ty))
            }
            "trunc" | "zext" | "sext" | "fptrunc" | "fpext" | "fptoui" | "fptosi" | "uitofp"
            | "sitofp" | "ptrtoint" | "inttoptr" | "bitcast" => {
                self.p.pos += 1;
                let op = match opcode {
                    "trunc" => CastOp::Trunc,
                    "zext" => CastOp::ZExt,
                    "sext" => CastOp::SExt,
                    "fptrunc" => CastOp::FpTrunc,
                    "fpext" => CastOp::FpExt,
                    "fptoui" => CastOp::FpToUi,
                    "fptosi" => CastOp::FpToSi,
                    "uitofp" => CastOp::UiToFp,
                    "sitofp" => CastOp::SiToFp,
                    "ptrtoint" => CastOp::PtrToInt,
                    "inttoptr" => CastOp::IntToPtr,
                    _ => CastOp::Bitcast,
                };
                let flags = self.p.parse_int_flags();
                let (_, value) = self.parse_typed_operand()?;
                self.p.expect_word("to")?;
                let to_ty = self.p.parse_type()?;
                Ok((InstKind::Cast { op, value, flags }, to_ty))
            }
            "call" => {
                self.p.pos += 1;
                let fmf = self.p.parse_fast_math_flags();
                let ret_ty = self.p.parse_type()?;
                let callee = match self.p.bump() {
                    Some(Tok::Global(g)) => g,
                    _ => return Err(self.p.error_here("expected callee")),
                };
                let short = callee
                    .strip_prefix("llvm.")
                    .map(|rest| {
                        // strip the trailing type suffix, e.g. `umin.i32` → `umin`,
                        // `uadd.sat.v4i8` → `uadd.sat`
                        let parts: Vec<&str> = rest.split('.').collect();
                        let last = parts.last().copied().unwrap_or("");
                        let is_type_suffix = last.starts_with('i')
                            || last.starts_with('v')
                            || last == "f32"
                            || last == "f64"
                            || last == "half"
                            || last == "float"
                            || last == "double";
                        if parts.len() > 1 && is_type_suffix {
                            parts[..parts.len() - 1].join(".")
                        } else {
                            rest.to_string()
                        }
                    })
                    .unwrap_or_else(|| callee.clone());
                let intrinsic = Intrinsic::from_short_name(&short).ok_or_else(|| {
                    self.p.error_here(format!("call to unknown function '@{callee}'"))
                })?;
                self.p.expect_punct('(')?;
                let mut args = Vec::new();
                if !self.p.eat_punct(')') {
                    loop {
                        let (_, v) = self.parse_typed_operand()?;
                        args.push(v);
                        if !self.p.eat_punct(',') {
                            break;
                        }
                    }
                    self.p.expect_punct(')')?;
                }
                if args.len() != intrinsic.arity() {
                    // Tolerate the optional-flag forms (e.g. abs with one arg).
                    if matches!(intrinsic, Intrinsic::Abs | Intrinsic::Ctlz | Intrinsic::Cttz)
                        && args.len() == 1
                    {
                        args.push(Value::bool(false));
                    } else {
                        return Err(self.p.error_here(format!(
                            "intrinsic '{intrinsic}' expects {} arguments, found {}",
                            intrinsic.arity(),
                            args.len()
                        )));
                    }
                }
                Ok((InstKind::Call { intrinsic, args, fmf }, ret_ty))
            }
            "load" => {
                self.p.pos += 1;
                let ty = self.p.parse_type()?;
                self.p.expect_punct(',')?;
                let (_, ptr) = self.parse_typed_operand()?;
                let align = self.eat_align();
                Ok((InstKind::Load { ptr, align }, ty))
            }
            "store" => {
                self.p.pos += 1;
                let (_, value) = self.parse_typed_operand()?;
                self.p.expect_punct(',')?;
                let (_, ptr) = self.parse_typed_operand()?;
                let align = self.eat_align();
                Ok((InstKind::Store { value, ptr, align }, Type::Void))
            }
            "getelementptr" => {
                self.p.pos += 1;
                let mut inbounds = false;
                let mut nuw = false;
                loop {
                    if self.p.eat_word("inbounds") {
                        inbounds = true;
                    } else if self.p.eat_word("nuw") {
                        nuw = true;
                    } else if self.p.eat_word("nusw") {
                        // accepted, treated as inbounds-lite; not separately modelled
                    } else {
                        break;
                    }
                }
                let elem_ty = self.p.parse_type()?;
                self.p.expect_punct(',')?;
                let (_, base) = self.parse_typed_operand()?;
                self.p.expect_punct(',')?;
                let (_, index) = self.parse_typed_operand()?;
                Ok((InstKind::Gep { elem_ty, base, index, inbounds, nuw }, Type::Ptr))
            }
            "alloca" => {
                self.p.pos += 1;
                let ty = self.p.parse_type()?;
                let _ = self.eat_align();
                Ok((InstKind::Alloca { ty }, Type::Ptr))
            }
            "extractelement" => {
                self.p.pos += 1;
                let (vty, vector) = self.parse_typed_operand()?;
                self.p.expect_punct(',')?;
                let (_, index) = self.parse_typed_operand()?;
                Ok((InstKind::ExtractElement { vector, index }, vty.scalar_type().clone()))
            }
            "insertelement" => {
                self.p.pos += 1;
                let (vty, vector) = self.parse_typed_operand()?;
                self.p.expect_punct(',')?;
                let (_, element) = self.parse_typed_operand()?;
                self.p.expect_punct(',')?;
                let (_, index) = self.parse_typed_operand()?;
                Ok((InstKind::InsertElement { vector, element, index }, vty))
            }
            "shufflevector" => {
                self.p.pos += 1;
                let (aty, a) = self.parse_typed_operand()?;
                self.p.expect_punct(',')?;
                let (_, b) = self.parse_typed_operand()?;
                self.p.expect_punct(',')?;
                let mask_ty = self.p.parse_type()?;
                let mask_const = self.p.parse_constant(&mask_ty)?;
                let mut mask = Vec::new();
                match &mask_const {
                    Constant::Vector(elems) => {
                        for e in elems {
                            match e {
                                Constant::Int(v) => mask.push(v.sext_value() as i32),
                                Constant::Poison(_) | Constant::Undef(_) => mask.push(-1),
                                _ => return Err(self.p.error_here("invalid shuffle mask element")),
                            }
                        }
                    }
                    _ => return Err(self.p.error_here("expected shuffle mask vector")),
                }
                let out_ty = Type::vector(mask.len() as u32, aty.scalar_type().clone());
                Ok((InstKind::ShuffleVector { a, b, mask }, out_ty))
            }
            "phi" => {
                self.p.pos += 1;
                let ty = self.p.parse_type()?;
                let mut incoming = Vec::new();
                loop {
                    self.p.expect_punct('[')?;
                    // Value may be a forward reference; remember by name if unknown.
                    let value = match self.p.peek().cloned() {
                        Some(Tok::Local(name)) => {
                            self.p.pos += 1;
                            match self.defs.get(&name) {
                                Some(v) => v.clone(),
                                None => {
                                    // placeholder: poison; fixed up in resolve_pending_phis
                                    let (line, column) = self.p.span();
                                    self.pending_phi_values.push((
                                        crate::instruction::InstId(u32::MAX),
                                        incoming.len(),
                                        name,
                                        line,
                                        column,
                                    ));
                                    Value::Const(Constant::Poison(ty.clone()))
                                }
                            }
                        }
                        _ => Value::Const(self.p.parse_constant(&ty)?),
                    };
                    self.p.expect_punct(',')?;
                    let label = match self.p.bump() {
                        Some(Tok::Local(l)) => l,
                        Some(Tok::Word(w)) => w,
                        _ => return Err(self.p.error_here("expected predecessor label")),
                    };
                    let bb = self.lookup_block(&label);
                    incoming.push((value, bb));
                    self.p.expect_punct(']')?;
                    if !self.p.eat_punct(',') {
                        break;
                    }
                }
                // Patch instruction id for pending entries added in this phi.
                let next_id = crate::instruction::InstId(self.func.total_instruction_count() as u32);
                for entry in &mut self.pending_phi_values {
                    if entry.0 == crate::instruction::InstId(u32::MAX) {
                        entry.0 = next_id;
                    }
                }
                Ok((InstKind::Phi { incoming }, ty))
            }
            "freeze" => {
                self.p.pos += 1;
                let (ty, value) = self.parse_typed_operand()?;
                Ok((InstKind::Freeze { value }, ty))
            }
            "ret" => {
                self.p.pos += 1;
                if self.p.eat_word("void") {
                    Ok((InstKind::Ret { value: None }, Type::Void))
                } else {
                    let (_, value) = self.parse_typed_operand()?;
                    Ok((InstKind::Ret { value: Some(value) }, Type::Void))
                }
            }
            "br" => {
                self.p.pos += 1;
                if self.p.eat_word("label") {
                    let label = match self.p.bump() {
                        Some(Tok::Local(l)) => l,
                        _ => return Err(self.p.error_here("expected branch target label")),
                    };
                    let bb = self.lookup_block(&label);
                    Ok((InstKind::Br { cond: None, then_block: bb, else_block: None }, Type::Void))
                } else {
                    let (_, cond) = self.parse_typed_operand()?;
                    self.p.expect_punct(',')?;
                    self.p.expect_word("label")?;
                    let then_label = match self.p.bump() {
                        Some(Tok::Local(l)) => l,
                        _ => return Err(self.p.error_here("expected branch target label")),
                    };
                    self.p.expect_punct(',')?;
                    self.p.expect_word("label")?;
                    let else_label = match self.p.bump() {
                        Some(Tok::Local(l)) => l,
                        _ => return Err(self.p.error_here("expected branch target label")),
                    };
                    let t = self.lookup_block(&then_label);
                    let e = self.lookup_block(&else_label);
                    Ok((
                        InstKind::Br { cond: Some(cond), then_block: t, else_block: Some(e) },
                        Type::Void,
                    ))
                }
            }
            "unreachable" => {
                self.p.pos += 1;
                Ok((InstKind::Unreachable, Type::Void))
            }
            _ => Err(self.p.error_here("expected instruction opcode")),
        }
    }

    fn resolve_pending_phis(&mut self) -> PResult<()> {
        let pending = std::mem::take(&mut self.pending_phi_values);
        for (inst_id, operand_idx, name, line, column) in pending {
            let value = self.defs.get(&name).cloned().ok_or_else(|| {
                ParseError::new(
                    format!("use of undefined value '%{name}'"),
                    line,
                    column,
                    self.p.lexer.line_text(line),
                )
            })?;
            // Phi incoming values are exactly the phi's operand list, so the
            // pending operand index addresses them directly; `set_operand`
            // keeps the function's use lists coherent with the patched value.
            if matches!(self.func.inst(inst_id).kind, InstKind::Phi { .. })
                && operand_idx < self.func.inst(inst_id).kind.operands().len()
            {
                self.func.set_operand(inst_id, operand_idx, value);
            }
        }
        Ok(())
    }
}

/// Parses a single function definition from `source`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem, formatted the
/// way LLVM's `opt` reports errors (message, offending line, caret).
pub fn parse_function(source: &str) -> Result<Function, ParseError> {
    let mut parser = Parser::new(source)?;
    let func = FunctionParser::parse(&mut parser)?;
    Ok(func)
}

/// Parses a whole module: any number of function definitions, plus optional
/// `; ModuleID = '…'` comments (which set the module name).
///
/// # Errors
///
/// Returns a [`ParseError`] on the first syntax problem.
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    let mut module = Module::new("");
    for line in source.lines() {
        if let Some(rest) = line.trim().strip_prefix("; ModuleID = '") {
            if let Some(name) = rest.strip_suffix('\'') {
                module.name = name.to_string();
            }
        }
    }
    let mut parser = Parser::new(source)?;
    while !parser.at_end() {
        let func = FunctionParser::parse(&mut parser)?;
        module.functions.push(func);
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_function;

    #[test]
    fn parses_paper_figure_1b() {
        let text = "define i8 @src(i32 %0) {\n\
            %2 = icmp slt i32 %0, 0\n\
            %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
            %4 = trunc nuw i32 %3 to i8\n\
            %5 = select i1 %2, i8 0, i8 %4\n\
            ret i8 %5\n\
            }";
        let f = parse_function(text).unwrap();
        assert_eq!(f.name, "src");
        assert_eq!(f.ret_ty, Type::i8());
        assert_eq!(f.instruction_count(), 4);
        assert_eq!(f.params.len(), 1);
    }

    #[test]
    fn parses_paper_figure_3a_vector_sequence() {
        let text = "define <4 x i8> @src(i64 %a0, ptr %a1) {\n\
            entry:\n\
            %0 = getelementptr inbounds nuw i32, ptr %a1, i64 %a0\n\
            %wide.load = load <4 x i32>, ptr %0, align 4\n\
            %3 = icmp slt <4 x i32> %wide.load, zeroinitializer\n\
            %5 = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> %wide.load, <4 x i32> splat (i32 255))\n\
            %7 = trunc nuw <4 x i32> %5 to <4 x i8>\n\
            %9 = select <4 x i1> %3, <4 x i8> zeroinitializer, <4 x i8> %7\n\
            ret <4 x i8> %9\n\
            }";
        let f = parse_function(text).unwrap();
        assert_eq!(f.instruction_count(), 6);
        assert_eq!(f.ret_ty, Type::vector(4, Type::i8()));
        // Round-trips through the printer.
        let printed = print_function(&f);
        let reparsed = parse_function(&printed).unwrap();
        assert_eq!(reparsed.instruction_count(), f.instruction_count());
    }

    #[test]
    fn reports_unknown_opcode_like_opt() {
        // Figure 3b/3c of the paper: `smax` used as a bare opcode.
        let text = "define <4 x i8> @src(i64 %a0, ptr %a1) {\n\
            %0 = getelementptr inbounds nuw i32, ptr %a1, i64 %a0\n\
            %wide.load = load <4 x i32>, ptr %0, align 4\n\
            %smax_0 = smax <4 x i32> %wide.load, zeroinitializer\n\
            ret <4 x i8> zeroinitializer\n\
            }";
        let err = parse_function(text).unwrap_err();
        assert_eq!(err.message, "expected instruction opcode");
        assert!(err.line_text.contains("smax"));
        let rendered = err.to_string();
        assert!(rendered.starts_with("error: expected instruction opcode"));
        assert!(rendered.contains('^'));
    }

    #[test]
    fn reports_undefined_values_and_unknown_callees() {
        let err = parse_function(
            "define i32 @f(i32 %x) {\n  %r = add i32 %x, %missing\n  ret i32 %r\n}",
        )
        .unwrap_err();
        assert!(err.message.contains("use of undefined value '%missing'"));

        let err = parse_function(
            "define i32 @f(i32 %x) {\n  %r = call i32 @unknown(i32 %x)\n  ret i32 %r\n}",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn parses_case_study_1_loads(){
        let text = "define i32 @src(ptr %0) {\n\
            %2 = load i16, ptr %0, align 2\n\
            %3 = getelementptr i8, ptr %0, i64 2\n\
            %4 = load i16, ptr %3, align 1\n\
            %5 = zext i16 %4 to i32\n\
            %6 = shl nuw i32 %5, 16\n\
            %7 = zext i16 %2 to i32\n\
            %8 = or disjoint i32 %6, %7\n\
            ret i32 %8\n\
            }";
        let f = parse_function(text).unwrap();
        assert_eq!(f.instruction_count(), 7);
        match &f.inst(f.inst_by_name("8").unwrap()).kind {
            InstKind::Binary { op: BinOp::Or, flags, .. } => assert!(flags.disjoint),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_case_study_3_floats() {
        let text = "define i1 @src(double %0) {\n\
            %2 = fcmp ord double %0, 0.000000e+00\n\
            %3 = select i1 %2, double %0, double 0.000000e+00\n\
            %4 = fcmp oeq double %3, 1.000000e+00\n\
            ret i1 %4\n\
            }";
        let f = parse_function(text).unwrap();
        assert_eq!(f.instruction_count(), 3);
        let printed = print_function(&f);
        assert!(parse_function(&printed).is_ok());
    }

    #[test]
    fn parses_control_flow_and_phi() {
        let text = "define i32 @loop(i32 %n) {\n\
            entry:\n\
              br label %header\n\
            header:\n\
              %i = phi i32 [ 0, %entry ], [ %i.next, %body ]\n\
              %cmp = icmp slt i32 %i, %n\n\
              br i1 %cmp, label %body, label %exit\n\
            body:\n\
              %i.next = add nuw nsw i32 %i, 1\n\
              br label %header\n\
            exit:\n\
              ret i32 %i\n\
            }";
        let f = parse_function(text).unwrap();
        assert_eq!(f.blocks().len(), 4);
        let phi_id = f.inst_by_name("i").unwrap();
        match &f.inst(phi_id).kind {
            InstKind::Phi { incoming } => {
                assert_eq!(incoming.len(), 2);
                // The forward reference to %i.next must have been resolved.
                assert!(matches!(incoming[1].0, Value::Inst(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_module_with_multiple_functions() {
        let text = "; ModuleID = 'two.ll'\n\
            define i32 @a(i32 %x) {\n  ret i32 %x\n}\n\
            define i32 @b(i32 %x) {\n  %y = mul i32 %x, 3\n  ret i32 %y\n}\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.name, "two.ll");
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.instruction_count(), 1);
    }

    #[test]
    fn parses_misc_instructions() {
        let text = "define i32 @misc(<4 x i32> %v, i32 %x, ptr %p) {\n\
            %a = extractelement <4 x i32> %v, i64 0\n\
            %b = insertelement <4 x i32> %v, i32 %x, i64 1\n\
            %c = shufflevector <4 x i32> %v, <4 x i32> %b, <4 x i32> <i32 0, i32 1, i32 4, i32 5>\n\
            %d = freeze i32 %x\n\
            %e = alloca i64\n\
            store i32 %d, ptr %e, align 4\n\
            %f = call i32 @llvm.abs.i32(i32 %x, i1 false)\n\
            %g = call i32 @llvm.ctpop.i32(i32 %x)\n\
            %h = add i32 %a, %f\n\
            %i = add i32 %g, %h\n\
            ret i32 %i\n\
            }";
        let f = parse_function(text).unwrap();
        assert_eq!(f.instruction_count(), 10);
        let printed = print_function(&f);
        assert!(parse_function(&printed).is_ok(), "round trip failed:\n{printed}");
    }

    #[test]
    fn parses_saturating_intrinsics_with_dotted_names() {
        let text = "define i8 @s(i8 %x, i8 %y) {\n\
            %a = call i8 @llvm.uadd.sat.i8(i8 %x, i8 %y)\n\
            %b = call i8 @llvm.usub.sat.i8(i8 %a, i8 %y)\n\
            ret i8 %b\n\
            }";
        let f = parse_function(text).unwrap();
        assert_eq!(f.instruction_count(), 2);
    }

    #[test]
    fn rejects_bad_types_and_widths() {
        assert!(parse_function("define i999 @f() {\n ret i999 0\n}").is_err());
        assert!(parse_function("define banana @f() {\n ret void\n}").is_err());
        let err = parse_function("define i32 @f(i32 %x) {\n  %y = add i32 %x 1\n  ret i32 %y\n}")
            .unwrap_err();
        assert!(err.message.contains("expected ','"));
    }

    #[test]
    fn parses_numeric_block_labels_and_unnamed_results() {
        let text = "define i32 @f(i1 %c, i32 %x) {\n\
            br i1 %c, label %1, label %2\n\
            1:\n\
              ret i32 %x\n\
            2:\n\
              ret i32 0\n\
            }";
        let f = parse_function(text).unwrap();
        assert_eq!(f.blocks().len(), 3);
    }

    #[test]
    fn error_display_matches_opt_shape() {
        let err = ParseError::new("expected instruction opcode", 3, 14, "  %smax_0 = smax <4 x i32> %w, zeroinitializer");
        let shown = err.to_string();
        let lines: Vec<&str> = shown.lines().collect();
        assert_eq!(lines[0], "error: expected instruction opcode");
        assert_eq!(lines[1], "  %smax_0 = smax <4 x i32> %w, zeroinitializer");
        assert_eq!(lines[2].trim_end(), format!("{}^", " ".repeat(13)));
    }
}
