//! Instruction flags: integer wrap/exactness flags and fast-math flags.
//!
//! Flags refine the semantics of an instruction. Violating a flag (e.g. an
//! `add nuw` that overflows) yields `poison` rather than undefined behaviour,
//! exactly as in LLVM. The translation validator in `lpo-tv` relies on these
//! semantics to accept refinements that drop flags and reject those that add
//! unjustified ones.

use std::fmt;

/// Integer instruction flags (`nuw`, `nsw`, `exact`, `disjoint`, `nneg`).
///
/// Only the subset meaningful for a given opcode is ever set; the IR verifier
/// rejects flags on opcodes that do not accept them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct IntFlags {
    /// "No unsigned wrap": unsigned overflow yields poison.
    pub nuw: bool,
    /// "No signed wrap": signed overflow yields poison.
    pub nsw: bool,
    /// Division/shift is exact: any remainder / shifted-out one bit yields poison.
    pub exact: bool,
    /// `or disjoint`: operands share no set bits, otherwise poison.
    pub disjoint: bool,
    /// `zext nneg` / `uitofp nneg`: a negative input yields poison.
    pub nneg: bool,
}

impl IntFlags {
    /// No flags set.
    pub fn none() -> Self {
        Self::default()
    }

    /// Only `nuw`.
    pub fn nuw() -> Self {
        Self { nuw: true, ..Self::default() }
    }

    /// Only `nsw`.
    pub fn nsw() -> Self {
        Self { nsw: true, ..Self::default() }
    }

    /// Both `nuw` and `nsw`.
    pub fn nuw_nsw() -> Self {
        Self { nuw: true, nsw: true, ..Self::default() }
    }

    /// Only `exact`.
    pub fn exact() -> Self {
        Self { exact: true, ..Self::default() }
    }

    /// Only `disjoint`.
    pub fn disjoint() -> Self {
        Self { disjoint: true, ..Self::default() }
    }

    /// Only `nneg`.
    pub fn nneg() -> Self {
        Self { nneg: true, ..Self::default() }
    }

    /// Returns `true` if no flag is set.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Returns a copy with every flag cleared that is not also set in `allowed`.
    pub fn intersect(&self, allowed: &IntFlags) -> IntFlags {
        IntFlags {
            nuw: self.nuw && allowed.nuw,
            nsw: self.nsw && allowed.nsw,
            exact: self.exact && allowed.exact,
            disjoint: self.disjoint && allowed.disjoint,
            nneg: self.nneg && allowed.nneg,
        }
    }

    /// Returns `true` if every flag set in `self` is also set in `other`.
    /// Dropping flags is always a valid refinement; adding them is not.
    pub fn is_subset_of(&self, other: &IntFlags) -> bool {
        (!self.nuw || other.nuw)
            && (!self.nsw || other.nsw)
            && (!self.exact || other.exact)
            && (!self.disjoint || other.disjoint)
            && (!self.nneg || other.nneg)
    }
}

impl fmt::Display for IntFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.disjoint {
            parts.push("disjoint");
        }
        if self.nuw {
            parts.push("nuw");
        }
        if self.nsw {
            parts.push("nsw");
        }
        if self.exact {
            parts.push("exact");
        }
        if self.nneg {
            parts.push("nneg");
        }
        write!(f, "{}", parts.join(" "))
    }
}

/// Floating-point fast-math flags (a practical subset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FastMathFlags {
    /// No NaNs: a NaN operand or result yields poison.
    pub nnan: bool,
    /// No infinities: an infinite operand or result yields poison.
    pub ninf: bool,
    /// No signed zeros: the sign of a zero result is unspecified.
    pub nsz: bool,
    /// Allow reassociation and other value-changing transforms.
    pub reassoc: bool,
}

impl FastMathFlags {
    /// No fast-math flags.
    pub fn none() -> Self {
        Self::default()
    }

    /// All fast-math flags (`fast`).
    pub fn fast() -> Self {
        Self { nnan: true, ninf: true, nsz: true, reassoc: true }
    }

    /// Returns `true` if no flag is set.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Returns `true` if every flag set in `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &FastMathFlags) -> bool {
        (!self.nnan || other.nnan)
            && (!self.ninf || other.ninf)
            && (!self.nsz || other.nsz)
            && (!self.reassoc || other.reassoc)
    }
}

impl fmt::Display for FastMathFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self == &Self::fast() {
            return write!(f, "fast");
        }
        let mut parts = Vec::new();
        if self.nnan {
            parts.push("nnan");
        }
        if self.ninf {
            parts.push("ninf");
        }
        if self.nsz {
            parts.push("nsz");
        }
        if self.reassoc {
            parts.push("reassoc");
        }
        write!(f, "{}", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_flag_constructors() {
        assert!(IntFlags::none().is_empty());
        assert!(IntFlags::nuw().nuw);
        assert!(IntFlags::nsw().nsw);
        assert!(IntFlags::nuw_nsw().nuw && IntFlags::nuw_nsw().nsw);
        assert!(IntFlags::exact().exact);
        assert!(IntFlags::disjoint().disjoint);
        assert!(IntFlags::nneg().nneg);
    }

    #[test]
    fn int_flag_display_order() {
        assert_eq!(IntFlags::nuw_nsw().to_string(), "nuw nsw");
        assert_eq!(IntFlags::disjoint().to_string(), "disjoint");
        assert_eq!(IntFlags::none().to_string(), "");
    }

    #[test]
    fn subset_semantics() {
        assert!(IntFlags::none().is_subset_of(&IntFlags::nuw_nsw()));
        assert!(IntFlags::nuw().is_subset_of(&IntFlags::nuw_nsw()));
        assert!(!IntFlags::nuw_nsw().is_subset_of(&IntFlags::nuw()));
        let both = IntFlags::nuw_nsw();
        assert_eq!(both.intersect(&IntFlags::nsw()), IntFlags::nsw());
    }

    #[test]
    fn fast_math_flags() {
        assert!(FastMathFlags::none().is_empty());
        assert_eq!(FastMathFlags::fast().to_string(), "fast");
        let nnan = FastMathFlags { nnan: true, ..Default::default() };
        assert_eq!(nnan.to_string(), "nnan");
        assert!(nnan.is_subset_of(&FastMathFlags::fast()));
        assert!(!FastMathFlags::fast().is_subset_of(&nnan));
    }
}
