//! A convenience builder for constructing IR functions programmatically.
//!
//! The builder keeps a current insertion block and auto-names results `t0`,
//! `t1`, … so callers can assemble functions without worrying about ids.
//!
//! # Examples
//!
//! ```
//! use lpo_ir::builder::FunctionBuilder;
//! use lpo_ir::types::Type;
//! use lpo_ir::instruction::{ICmpPred, Value};
//!
//! // i8 @clamp_hi(i32 %x): return x < 0 ? 0 : min(x, 255) truncated to i8
//! let mut b = FunctionBuilder::new("src", Type::i8());
//! let x = b.add_param("x", Type::i32());
//! let is_neg = b.icmp(ICmpPred::Slt, x.clone(), Value::int(32, 0));
//! let clamped = b.umin(x, Value::int(32, 255));
//! let narrow = b.trunc(clamped, Type::i8());
//! let result = b.select(is_neg, Value::int(8, 0), narrow);
//! b.ret(Some(result));
//! let func = b.build();
//! assert_eq!(func.instruction_count(), 4);
//! ```

use crate::constant::Constant;
use crate::flags::{FastMathFlags, IntFlags};
use crate::function::{Function, Param};
use crate::instruction::{
    BinOp, BlockId, CastOp, FBinOp, FCmpPred, ICmpPred, InstKind, Instruction, Intrinsic, Value,
};
use crate::types::Type;

/// Builds a [`Function`] incrementally.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    next_temp: usize,
}

impl FunctionBuilder {
    /// Creates a builder for a function with the given name and return type.
    /// The insertion point starts in a fresh `entry` block.
    pub fn new(name: impl Into<String>, ret_ty: Type) -> Self {
        let func = Function::new(name, ret_ty);
        let current = func.entry();
        Self { func, current, next_temp: 0 }
    }

    /// Adds a parameter and returns a [`Value`] referring to it.
    pub fn add_param(&mut self, name: impl Into<String>, ty: Type) -> Value {
        self.func.params.push(Param { name: name.into(), ty });
        Value::Arg(self.func.params.len() - 1)
    }

    /// Creates a new basic block and returns its id (does not move the insertion point).
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Moves the insertion point to the end of `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Finishes and returns the constructed function.
    pub fn build(self) -> Function {
        self.func
    }

    /// Read-only access to the function under construction.
    pub fn function(&self) -> &Function {
        &self.func
    }

    fn fresh_name(&mut self) -> String {
        let name = format!("t{}", self.next_temp);
        self.next_temp += 1;
        name
    }

    /// Appends an arbitrary value-producing instruction and returns its result.
    pub fn push(&mut self, kind: InstKind, ty: Type) -> Value {
        let name = if ty == Type::Void { String::new() } else { self.fresh_name() };
        let id = self.func.append_inst(self.current, Instruction::new(kind, ty, name));
        Value::Inst(id)
    }

    /// Appends a void instruction (store, branch, …).
    pub fn push_void(&mut self, kind: InstKind) {
        self.func.append_inst(self.current, Instruction::new(kind, Type::Void, ""));
    }

    fn value_ty(&self, v: &Value) -> Type {
        self.func.value_type(v)
    }

    // --- integer arithmetic ----------------------------------------------------

    /// Appends an integer binary operation with explicit flags.
    pub fn binary_flagged(&mut self, op: BinOp, lhs: Value, rhs: Value, flags: IntFlags) -> Value {
        let ty = self.value_ty(&lhs);
        self.push(InstKind::Binary { op, lhs, rhs, flags }, ty)
    }

    /// Appends an integer binary operation without flags.
    pub fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        self.binary_flagged(op, lhs, rhs, IntFlags::none())
    }

    /// Appends an `add`.
    pub fn add(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Add, lhs, rhs)
    }

    /// Appends a `sub`.
    pub fn sub(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Sub, lhs, rhs)
    }

    /// Appends a `mul`.
    pub fn mul(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Mul, lhs, rhs)
    }

    /// Appends an `and`.
    pub fn and(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::And, lhs, rhs)
    }

    /// Appends an `or`.
    pub fn or(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Or, lhs, rhs)
    }

    /// Appends an `or disjoint`.
    pub fn or_disjoint(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary_flagged(BinOp::Or, lhs, rhs, IntFlags::disjoint())
    }

    /// Appends an `xor`.
    pub fn xor(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Xor, lhs, rhs)
    }

    /// Appends a `shl`.
    pub fn shl(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Shl, lhs, rhs)
    }

    /// Appends a `shl nuw`.
    pub fn shl_nuw(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary_flagged(BinOp::Shl, lhs, rhs, IntFlags::nuw())
    }

    /// Appends a `lshr`.
    pub fn lshr(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::LShr, lhs, rhs)
    }

    /// Appends an `ashr`.
    pub fn ashr(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::AShr, lhs, rhs)
    }

    /// Appends a `udiv`.
    pub fn udiv(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::UDiv, lhs, rhs)
    }

    /// Appends an `sdiv`.
    pub fn sdiv(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::SDiv, lhs, rhs)
    }

    /// Appends a `urem`.
    pub fn urem(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::URem, lhs, rhs)
    }

    /// Appends an `srem`.
    pub fn srem(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::SRem, lhs, rhs)
    }

    // --- floating point ---------------------------------------------------------

    /// Appends a floating-point binary operation.
    pub fn fbinary(&mut self, op: FBinOp, lhs: Value, rhs: Value, fmf: FastMathFlags) -> Value {
        let ty = self.value_ty(&lhs);
        self.push(InstKind::FBinary { op, lhs, rhs, fmf }, ty)
    }

    /// Appends an `fadd` with no fast-math flags.
    pub fn fadd(&mut self, lhs: Value, rhs: Value) -> Value {
        self.fbinary(FBinOp::FAdd, lhs, rhs, FastMathFlags::none())
    }

    /// Appends an `fmul` with no fast-math flags.
    pub fn fmul(&mut self, lhs: Value, rhs: Value) -> Value {
        self.fbinary(FBinOp::FMul, lhs, rhs, FastMathFlags::none())
    }

    // --- comparisons and select ---------------------------------------------------

    /// Appends an `icmp`.
    pub fn icmp(&mut self, pred: ICmpPred, lhs: Value, rhs: Value) -> Value {
        let ty = self.value_ty(&lhs).with_scalar(Type::i1());
        self.push(InstKind::ICmp { pred, lhs, rhs }, ty)
    }

    /// Appends an `fcmp`.
    pub fn fcmp(&mut self, pred: FCmpPred, lhs: Value, rhs: Value) -> Value {
        let ty = self.value_ty(&lhs).with_scalar(Type::i1());
        self.push(InstKind::FCmp { pred, lhs, rhs }, ty)
    }

    /// Appends a `select`.
    pub fn select(&mut self, cond: Value, on_true: Value, on_false: Value) -> Value {
        let ty = self.value_ty(&on_true);
        self.push(InstKind::Select { cond, on_true, on_false }, ty)
    }

    // --- casts -------------------------------------------------------------------

    /// Appends a cast with explicit flags.
    pub fn cast_flagged(&mut self, op: CastOp, value: Value, to: Type, flags: IntFlags) -> Value {
        self.push(InstKind::Cast { op, value, flags }, to)
    }

    /// Appends a cast.
    pub fn cast(&mut self, op: CastOp, value: Value, to: Type) -> Value {
        self.cast_flagged(op, value, to, IntFlags::none())
    }

    /// Appends a `trunc`.
    pub fn trunc(&mut self, value: Value, to: Type) -> Value {
        self.cast(CastOp::Trunc, value, to)
    }

    /// Appends a `trunc nuw`.
    pub fn trunc_nuw(&mut self, value: Value, to: Type) -> Value {
        self.cast_flagged(CastOp::Trunc, value, to, IntFlags::nuw())
    }

    /// Appends a `zext`.
    pub fn zext(&mut self, value: Value, to: Type) -> Value {
        self.cast(CastOp::ZExt, value, to)
    }

    /// Appends a `sext`.
    pub fn sext(&mut self, value: Value, to: Type) -> Value {
        self.cast(CastOp::SExt, value, to)
    }

    // --- intrinsic calls -----------------------------------------------------------

    /// Appends an intrinsic call. The result type matches the first argument
    /// except for comparisons against documented exceptions (`ctpop` etc. keep
    /// their operand type as well, so this covers every supported intrinsic).
    pub fn call(&mut self, intrinsic: Intrinsic, args: Vec<Value>) -> Value {
        let ty = self.value_ty(&args[0]);
        self.push(InstKind::Call { intrinsic, args, fmf: FastMathFlags::none() }, ty)
    }

    /// Appends `llvm.umin`.
    pub fn umin(&mut self, a: Value, b: Value) -> Value {
        self.call(Intrinsic::Umin, vec![a, b])
    }

    /// Appends `llvm.umax`.
    pub fn umax(&mut self, a: Value, b: Value) -> Value {
        self.call(Intrinsic::Umax, vec![a, b])
    }

    /// Appends `llvm.smin`.
    pub fn smin(&mut self, a: Value, b: Value) -> Value {
        self.call(Intrinsic::Smin, vec![a, b])
    }

    /// Appends `llvm.smax`.
    pub fn smax(&mut self, a: Value, b: Value) -> Value {
        self.call(Intrinsic::Smax, vec![a, b])
    }

    /// Appends `llvm.abs` with `is_int_min_poison = false`.
    pub fn abs(&mut self, value: Value) -> Value {
        self.call(Intrinsic::Abs, vec![value, Value::bool(false)])
    }

    // --- memory ---------------------------------------------------------------------

    /// Appends a `load`.
    pub fn load(&mut self, ty: Type, ptr: Value, align: u32) -> Value {
        self.push(InstKind::Load { ptr, align }, ty)
    }

    /// Appends a `store`.
    pub fn store(&mut self, value: Value, ptr: Value, align: u32) {
        self.push_void(InstKind::Store { value, ptr, align });
    }

    /// Appends a `getelementptr`.
    pub fn gep(&mut self, elem_ty: Type, base: Value, index: Value, inbounds: bool, nuw: bool) -> Value {
        self.push(InstKind::Gep { elem_ty, base, index, inbounds, nuw }, Type::Ptr)
    }

    /// Appends an `alloca`.
    pub fn alloca(&mut self, ty: Type) -> Value {
        self.push(InstKind::Alloca { ty }, Type::Ptr)
    }

    // --- vectors ---------------------------------------------------------------------

    /// Appends an `extractelement`.
    pub fn extract_element(&mut self, vector: Value, index: Value) -> Value {
        let ty = self.value_ty(&vector).scalar_type().clone();
        self.push(InstKind::ExtractElement { vector, index }, ty)
    }

    /// Appends an `insertelement`.
    pub fn insert_element(&mut self, vector: Value, element: Value, index: Value) -> Value {
        let ty = self.value_ty(&vector);
        self.push(InstKind::InsertElement { vector, element, index }, ty)
    }

    /// Appends a `shufflevector` with a constant mask.
    pub fn shuffle(&mut self, a: Value, b: Value, mask: Vec<i32>) -> Value {
        let elem = self.value_ty(&a).scalar_type().clone();
        let ty = Type::vector(mask.len() as u32, elem);
        self.push(InstKind::ShuffleVector { a, b, mask }, ty)
    }

    // --- misc --------------------------------------------------------------------------

    /// Appends a `freeze`.
    pub fn freeze(&mut self, value: Value) -> Value {
        let ty = self.value_ty(&value);
        self.push(InstKind::Freeze { value }, ty)
    }

    /// Appends a `phi` node.
    pub fn phi(&mut self, ty: Type, incoming: Vec<(Value, BlockId)>) -> Value {
        self.push(InstKind::Phi { incoming }, ty)
    }

    /// Appends a `ret`.
    pub fn ret(&mut self, value: Option<Value>) {
        self.push_void(InstKind::Ret { value });
    }

    /// Appends an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push_void(InstKind::Br { cond: None, then_block: target, else_block: None });
    }

    /// Appends a conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_block: BlockId, else_block: BlockId) {
        self.push_void(InstKind::Br { cond: Some(cond), then_block, else_block: Some(else_block) });
    }

    /// Appends an `unreachable` terminator.
    pub fn unreachable(&mut self) {
        self.push_void(InstKind::Unreachable);
    }

    /// Convenience: a constant of the function's integer width splatted over a
    /// vector type when `ty` is a vector, or the scalar constant otherwise.
    pub fn const_of(&self, ty: &Type, value: i128) -> Value {
        let scalar = match ty.scalar_type() {
            Type::Int(w) => Constant::int_signed(*w, value),
            other => panic!("const_of only supports integer types, got {other}"),
        };
        match ty.lanes() {
            Some(n) => Value::Const(Constant::splat(n, scalar)),
            None => Value::Const(scalar),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_scalar_function() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let y = b.add_param("y", Type::i32());
        let s = b.add(x.clone(), y.clone());
        let d = b.mul(s.clone(), Value::int(32, 2));
        let c = b.icmp(ICmpPred::Sgt, d.clone(), Value::int(32, 0));
        let r = b.select(c, d, Value::int(32, 0));
        b.ret(Some(r));
        let f = b.build();
        assert_eq!(f.instruction_count(), 4);
        assert_eq!(f.ret_ty, Type::i32());
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn builds_vector_and_memory_function() {
        let v4i32 = Type::vector(4, Type::i32());
        let mut b = FunctionBuilder::new("v", Type::vector(4, Type::i8()));
        let idx = b.add_param("a0", Type::i64());
        let base = b.add_param("a1", Type::Ptr);
        let addr = b.gep(Type::i32(), base, idx, true, true);
        let wide = b.load(v4i32.clone(), addr, 4);
        let clamped = b.umin(wide.clone(), b.const_of(&v4i32, 255));
        let narrow = b.trunc_nuw(clamped, Type::vector(4, Type::i8()));
        b.ret(Some(narrow));
        let f = b.build();
        assert_eq!(f.instruction_count(), 4);
        assert_eq!(f.value_type(&Value::Inst(f.block(f.entry()).insts[1])), v4i32);
    }

    #[test]
    fn multi_block_control_flow() {
        let mut b = FunctionBuilder::new("g", Type::i32());
        let x = b.add_param("x", Type::i32());
        let then_bb = b.add_block("then");
        let else_bb = b.add_block("else");
        let cond = b.icmp(ICmpPred::Eq, x.clone(), Value::int(32, 0));
        b.cond_br(cond, then_bb, else_bb);
        b.switch_to(then_bb);
        b.ret(Some(Value::int(32, 1)));
        b.switch_to(else_bb);
        b.ret(Some(x));
        let f = b.build();
        assert_eq!(f.blocks().len(), 3);
        assert_eq!(f.total_instruction_count(), 4);
    }

    #[test]
    fn icmp_on_vectors_produces_bool_vector() {
        let v4i32 = Type::vector(4, Type::i32());
        let mut b = FunctionBuilder::new("c", Type::vector(4, Type::i1()));
        let x = b.add_param("x", v4i32.clone());
        let cmp = b.icmp(ICmpPred::Slt, x, b.const_of(&v4i32, 0));
        let ty = b.function().value_type(&cmp);
        assert_eq!(ty, Type::vector(4, Type::i1()));
        b.ret(Some(cmp));
    }

    #[test]
    fn const_of_scalar_and_vector() {
        let b = FunctionBuilder::new("x", Type::Void);
        let c = b.const_of(&Type::i8(), -1);
        assert_eq!(c.as_const().unwrap().as_int().unwrap().zext_value(), 0xff);
        let v = b.const_of(&Type::vector(4, Type::i32()), 255);
        assert!(v.as_const().unwrap().is_splat());
    }

    #[test]
    #[should_panic(expected = "only supports integer types")]
    fn const_of_float_panics() {
        let b = FunctionBuilder::new("x", Type::Void);
        let _ = b.const_of(&Type::double(), 1);
    }
}
