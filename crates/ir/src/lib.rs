//! # lpo-ir
//!
//! An SSA, typed, LLVM-flavoured intermediate representation used by the LPO
//! reproduction: the value types, instructions, functions and modules that the
//! extractor, optimizer, translation validator, cost model, and (simulated)
//! LLM all exchange.
//!
//! The crate is self-contained and has no dependencies. Its textual syntax is
//! a faithful subset of LLVM IR — every example in the LPO paper (the clamp
//! function of Figure 1, the extracted window of Figure 3, the three case
//! studies of Figure 4) parses and prints with this crate.
//!
//! ## Quick tour
//!
//! ```
//! use lpo_ir::prelude::*;
//!
//! // Build IR programmatically…
//! let mut b = FunctionBuilder::new("src", Type::i8());
//! let x = b.add_param("x", Type::i32());
//! let neg = b.icmp(ICmpPred::Slt, x.clone(), Value::int(32, 0));
//! let lo = b.umin(x, Value::int(32, 255));
//! let t = b.trunc_nuw(lo, Type::i8());
//! let sel = b.select(neg, Value::int(8, 0), t);
//! b.ret(Some(sel));
//! let func = b.build();
//!
//! // …print it as text…
//! let text = lpo_ir::printer::print_function(&func);
//! assert!(text.contains("llvm.umin.i32"));
//!
//! // …and parse it back.
//! let reparsed = lpo_ir::parser::parse_function(&text)?;
//! assert_eq!(lpo_ir::hash::hash_function(&func), lpo_ir::hash::hash_function(&reparsed));
//! # Ok::<(), lpo_ir::parser::ParseError>(())
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

pub mod apint;
pub mod builder;
pub mod constant;
pub mod flags;
pub mod function;
pub mod hash;
pub mod instruction;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verifier;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::apint::ApInt;
    pub use crate::builder::FunctionBuilder;
    pub use crate::constant::Constant;
    pub use crate::flags::{FastMathFlags, IntFlags};
    pub use crate::function::{BasicBlock, Function, Param};
    pub use crate::hash::{hash_function, Digest};
    pub use crate::instruction::{
        BinOp, BlockId, CastOp, FBinOp, FCmpPred, ICmpPred, InstId, InstKind, Instruction,
        Intrinsic, Value,
    };
    pub use crate::module::Module;
    pub use crate::parser::{parse_function, parse_module, ParseError};
    pub use crate::printer::{print_function, print_module};
    pub use crate::types::{FloatKind, Type};
    pub use crate::verifier::{verify_function, verify_module, VerifyError};
}
