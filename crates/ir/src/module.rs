//! IR modules: named containers of functions.
//!
//! A module corresponds to one translation unit of a compiled program and is
//! the unit the LPO extractor walks (Algorithm 2 in the paper).

use crate::function::Function;
use std::fmt;

/// A compilation unit containing zero or more functions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// The module identifier (e.g. a source file name).
    pub name: String,
    /// The functions defined in this module.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), functions: Vec::new() }
    }

    /// Adds a function and returns a reference to it.
    pub fn add_function(&mut self, func: Function) -> &Function {
        self.functions.push(func);
        self.functions.last().expect("just pushed")
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a function mutably by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Total number of non-terminator instructions across all functions.
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(Function::instruction_count).sum()
    }

    /// Total number of basic blocks across all functions.
    pub fn block_count(&self) -> usize {
        self.functions.iter().map(|f| f.blocks().len()).sum()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print_module(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::Value;
    use crate::types::Type;

    fn tiny(name: &str) -> Function {
        let mut b = FunctionBuilder::new(name, Type::i32());
        let x = b.add_param("x", Type::i32());
        let y = b.add(x, Value::int(32, 1));
        b.ret(Some(y));
        b.build()
    }

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new("demo.ll");
        m.add_function(tiny("a"));
        m.add_function(tiny("b"));
        assert!(m.function("a").is_some());
        assert!(m.function("c").is_none());
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.instruction_count(), 2);
        assert_eq!(m.block_count(), 2);
        m.function_mut("a").unwrap().name = "renamed".to_string();
        assert!(m.function("renamed").is_some());
    }

    #[test]
    fn default_is_empty() {
        let m = Module::default();
        assert!(m.functions.is_empty());
        assert_eq!(m.instruction_count(), 0);
    }
}
