//! Structural and type verification of IR functions.
//!
//! The verifier catches malformed IR early: operand type mismatches, flags on
//! opcodes that do not accept them, missing terminators, and uses of values
//! that are never defined. The LPO pipeline runs it right after parsing an
//! LLM-proposed candidate; its diagnostics join the parser's as feedback.

use crate::function::Function;
use crate::instruction::{BinOp, CastOp, InstKind, Intrinsic, Value};
use crate::module::Module;
use crate::types::Type;
use std::fmt;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// The function in which the problem was found.
    pub function: String,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: in function '@{}': {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in a module.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in &module.functions {
        verify_function(func)?;
    }
    Ok(())
}

/// Verifies a single function.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found. Checks performed:
///
/// * every block ends with exactly one terminator, which is its last instruction;
/// * operand types are consistent with each opcode's typing rules;
/// * flags only appear on opcodes that allow them;
/// * every instruction operand refers to a placed instruction or a valid argument;
/// * the returned value matches the declared return type.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    let err = |message: String| VerifyError { function: func.name.clone(), message };

    if func.blocks().is_empty() {
        return Err(err("function has no basic blocks".into()));
    }

    // The maintained def–use lists must agree with a fresh scan; a stale list
    // means some transformation edited operands behind the mutation API.
    if let Err(message) = func.verify_use_lists() {
        return Err(err(format!("use-list incoherence: {message}")));
    }

    // Collect placed instruction ids for def checking.
    let placed: std::collections::HashSet<_> = func.iter_inst_ids().collect();

    for (block_id, block) in func.iter_blocks() {
        if block.insts.is_empty() {
            return Err(err(format!("basic block '{}' is empty", block.name)));
        }
        let last = *block.insts.last().expect("non-empty");
        if !func.inst(last).is_terminator() {
            return Err(err(format!("basic block '{}' does not end with a terminator", block.name)));
        }
        for (idx, &inst_id) in block.insts.iter().enumerate() {
            let inst = func.inst(inst_id);
            if inst.is_terminator() && idx + 1 != block.insts.len() {
                return Err(err(format!(
                    "terminator '{}' is not the last instruction of block '{}'",
                    inst.kind.opcode_name(),
                    block.name
                )));
            }
            // Operand validity.
            for op in inst.kind.operands() {
                match op {
                    Value::Arg(i) => {
                        if *i >= func.params.len() {
                            return Err(err(format!(
                                "instruction '%{}' references argument #{i} but the function has {} parameters",
                                inst.name,
                                func.params.len()
                            )));
                        }
                    }
                    Value::Inst(id) => {
                        if !placed.contains(id) {
                            return Err(err(format!(
                                "instruction '%{}' uses a value that is not placed in any block",
                                inst.name
                            )));
                        }
                    }
                    Value::Const(_) => {}
                }
            }
            verify_inst_types(func, inst_id, block_id.0).map_err(err)?;
        }
    }
    Ok(())
}

fn type_of(func: &Function, v: &Value) -> Type {
    func.value_type(v)
}

fn verify_inst_types(func: &Function, inst_id: crate::instruction::InstId, _block: u32) -> Result<(), String> {
    let inst = func.inst(inst_id);
    let name = &inst.name;
    match &inst.kind {
        InstKind::Binary { op, lhs, rhs, flags } => {
            let lt = type_of(func, lhs);
            let rt = type_of(func, rhs);
            if lt != rt {
                return Err(format!("'%{name}': operands of '{}' have mismatched types ({lt} vs {rt})", op.mnemonic()));
            }
            if !lt.is_int_or_int_vector() {
                return Err(format!("'%{name}': '{}' requires integer operands, got {lt}", op.mnemonic()));
            }
            if lt != inst.ty {
                return Err(format!("'%{name}': result type {} does not match operand type {lt}", inst.ty));
            }
            if !flags.is_subset_of(&op.allowed_flags()) {
                return Err(format!("'%{name}': flags '{flags}' are not valid on '{}'", op.mnemonic()));
            }
            // Shift amount / division semantics are value-level; nothing further here.
            let _ = BinOp::ALL;
            Ok(())
        }
        InstKind::FBinary { op, lhs, rhs, .. } => {
            let lt = type_of(func, lhs);
            let rt = type_of(func, rhs);
            if lt != rt || !lt.is_float_or_float_vector() {
                return Err(format!("'%{name}': '{}' requires matching floating-point operands", op.mnemonic()));
            }
            if lt != inst.ty {
                return Err(format!("'%{name}': result type {} does not match operand type {lt}", inst.ty));
            }
            Ok(())
        }
        InstKind::ICmp { lhs, rhs, .. } => {
            let lt = type_of(func, lhs);
            let rt = type_of(func, rhs);
            if lt != rt {
                return Err(format!("'%{name}': icmp operands have mismatched types ({lt} vs {rt})"));
            }
            if !(lt.is_int_or_int_vector() || lt.is_ptr()) {
                return Err(format!("'%{name}': icmp requires integer or pointer operands, got {lt}"));
            }
            if inst.ty != lt.with_scalar(Type::i1()) {
                return Err(format!("'%{name}': icmp must produce i1 (or a vector of i1)"));
            }
            Ok(())
        }
        InstKind::FCmp { lhs, rhs, .. } => {
            let lt = type_of(func, lhs);
            let rt = type_of(func, rhs);
            if lt != rt || !lt.is_float_or_float_vector() {
                return Err(format!("'%{name}': fcmp requires matching floating-point operands"));
            }
            if inst.ty != lt.with_scalar(Type::i1()) {
                return Err(format!("'%{name}': fcmp must produce i1 (or a vector of i1)"));
            }
            Ok(())
        }
        InstKind::Select { cond, on_true, on_false } => {
            let ct = type_of(func, cond);
            let tt = type_of(func, on_true);
            let ft = type_of(func, on_false);
            if !ct.is_bool_or_bool_vector() {
                return Err(format!("'%{name}': select condition must be i1 or a vector of i1, got {ct}"));
            }
            if tt != ft {
                return Err(format!("'%{name}': select arms have mismatched types ({tt} vs {ft})"));
            }
            if ct.is_vector() && ct.lanes() != tt.lanes() {
                return Err(format!("'%{name}': select condition lanes do not match value lanes"));
            }
            if inst.ty != tt {
                return Err(format!("'%{name}': select result type must match its arms"));
            }
            Ok(())
        }
        InstKind::Cast { op, value, flags } => {
            let vt = type_of(func, value);
            if !flags.is_subset_of(&op.allowed_flags()) {
                return Err(format!("'%{name}': flags '{flags}' are not valid on '{}'", op.mnemonic()));
            }
            if !vt.same_shape(&inst.ty) {
                return Err(format!("'%{name}': cast cannot change vector shape ({vt} to {})", inst.ty));
            }
            let from = vt.scalar_type();
            let to = inst.ty.scalar_type();
            let ok = match op {
                CastOp::Trunc => from.is_int() && to.is_int() && from.int_width() > to.int_width(),
                CastOp::ZExt | CastOp::SExt => from.is_int() && to.is_int() && from.int_width() < to.int_width(),
                CastOp::FpTrunc => from.is_float() && to.is_float() && from.size_in_bits() > to.size_in_bits(),
                CastOp::FpExt => from.is_float() && to.is_float() && from.size_in_bits() < to.size_in_bits(),
                CastOp::FpToUi | CastOp::FpToSi => from.is_float() && to.is_int(),
                CastOp::UiToFp | CastOp::SiToFp => from.is_int() && to.is_float(),
                CastOp::PtrToInt => from.is_ptr() && to.is_int(),
                CastOp::IntToPtr => from.is_int() && to.is_ptr(),
                CastOp::Bitcast => {
                    from != &Type::Ptr && to != &Type::Ptr && vt.size_in_bits() == inst.ty.size_in_bits()
                }
            };
            if !ok {
                return Err(format!("'%{name}': invalid '{}' from {vt} to {}", op.mnemonic(), inst.ty));
            }
            Ok(())
        }
        InstKind::Call { intrinsic, args, .. } => {
            if args.len() != intrinsic.arity() {
                return Err(format!(
                    "'%{name}': intrinsic '{intrinsic}' expects {} arguments, found {}",
                    intrinsic.arity(),
                    args.len()
                ));
            }
            let a0 = type_of(func, &args[0]);
            if intrinsic.is_integer() && !a0.is_int_or_int_vector() {
                return Err(format!("'%{name}': intrinsic '{intrinsic}' requires integer operands"));
            }
            if !intrinsic.is_integer() && !a0.is_float_or_float_vector() {
                return Err(format!("'%{name}': intrinsic '{intrinsic}' requires floating-point operands"));
            }
            if inst.ty != a0 {
                return Err(format!("'%{name}': intrinsic result type must match its first operand"));
            }
            match intrinsic {
                Intrinsic::Abs | Intrinsic::Ctlz | Intrinsic::Cttz => {
                    let flag_ty = type_of(func, &args[1]);
                    if flag_ty != Type::i1() {
                        return Err(format!("'%{name}': the second operand of '{intrinsic}' must be i1"));
                    }
                }
                Intrinsic::Bswap => {
                    if a0.scalar_type().int_width().is_none_or(|w| w % 16 != 0) {
                        return Err(format!("'%{name}': bswap requires a width that is a multiple of 16"));
                    }
                }
                _ => {
                    for arg in &args[1..] {
                        let at = type_of(func, arg);
                        if at != a0 {
                            return Err(format!("'%{name}': intrinsic operands must share one type"));
                        }
                    }
                }
            }
            Ok(())
        }
        InstKind::Load { ptr, .. } => {
            if !type_of(func, ptr).is_ptr() {
                return Err(format!("'%{name}': load requires a pointer operand"));
            }
            if inst.ty == Type::Void {
                return Err(format!("'%{name}': load cannot produce void"));
            }
            Ok(())
        }
        InstKind::Store { ptr, .. } => {
            if !type_of(func, ptr).is_ptr() {
                return Err("store requires a pointer operand".to_string());
            }
            Ok(())
        }
        InstKind::Gep { base, index, .. } => {
            if !type_of(func, base).is_ptr() {
                return Err(format!("'%{name}': getelementptr base must be a pointer"));
            }
            if !type_of(func, index).is_int() {
                return Err(format!("'%{name}': getelementptr index must be an integer"));
            }
            if inst.ty != Type::Ptr {
                return Err(format!("'%{name}': getelementptr must produce ptr"));
            }
            Ok(())
        }
        InstKind::Alloca { .. } => {
            if inst.ty != Type::Ptr {
                return Err(format!("'%{name}': alloca must produce ptr"));
            }
            Ok(())
        }
        InstKind::ExtractElement { vector, index } => {
            let vt = type_of(func, vector);
            if !vt.is_vector() {
                return Err(format!("'%{name}': extractelement requires a vector operand"));
            }
            if !type_of(func, index).is_int() {
                return Err(format!("'%{name}': extractelement index must be an integer"));
            }
            if &inst.ty != vt.scalar_type() {
                return Err(format!("'%{name}': extractelement result must be the element type"));
            }
            Ok(())
        }
        InstKind::InsertElement { vector, element, index } => {
            let vt = type_of(func, vector);
            if !vt.is_vector() {
                return Err(format!("'%{name}': insertelement requires a vector operand"));
            }
            if type_of(func, element) != *vt.scalar_type() {
                return Err(format!("'%{name}': insertelement element type must match the vector"));
            }
            if !type_of(func, index).is_int() {
                return Err(format!("'%{name}': insertelement index must be an integer"));
            }
            if inst.ty != vt {
                return Err(format!("'%{name}': insertelement result must match the vector type"));
            }
            Ok(())
        }
        InstKind::ShuffleVector { a, b, mask } => {
            let at = type_of(func, a);
            let bt = type_of(func, b);
            if !at.is_vector() || at != bt {
                return Err(format!("'%{name}': shufflevector requires two vectors of the same type"));
            }
            let input_lanes = at.lanes().unwrap_or(0) * 2;
            for &m in mask {
                if m >= 0 && m as u32 >= input_lanes {
                    return Err(format!("'%{name}': shuffle mask index {m} is out of range"));
                }
            }
            if inst.ty != Type::vector(mask.len() as u32, at.scalar_type().clone()) {
                return Err(format!("'%{name}': shufflevector result type does not match its mask"));
            }
            Ok(())
        }
        InstKind::Phi { incoming } => {
            if incoming.is_empty() {
                return Err(format!("'%{name}': phi has no incoming values"));
            }
            for (v, bb) in incoming {
                if type_of(func, v) != inst.ty {
                    return Err(format!("'%{name}': phi incoming value type does not match"));
                }
                if bb.0 as usize >= func.blocks().len() {
                    return Err(format!("'%{name}': phi references a non-existent block"));
                }
            }
            Ok(())
        }
        InstKind::Freeze { value } => {
            if type_of(func, value) != inst.ty {
                return Err(format!("'%{name}': freeze result type must match its operand"));
            }
            Ok(())
        }
        InstKind::Ret { value } => {
            match value {
                Some(v) => {
                    let vt = type_of(func, v);
                    if vt != func.ret_ty {
                        return Err(format!(
                            "returned value type {vt} does not match function return type {}",
                            func.ret_ty
                        ));
                    }
                }
                None => {
                    if func.ret_ty != Type::Void {
                        return Err(format!("'ret void' in a function returning {}", func.ret_ty));
                    }
                }
            }
            Ok(())
        }
        InstKind::Br { cond, then_block, else_block } => {
            if let Some(c) = cond {
                if type_of(func, c) != Type::i1() {
                    return Err("conditional branch condition must be i1".to_string());
                }
                if else_block.is_none() {
                    return Err("conditional branch requires two targets".to_string());
                }
            }
            if then_block.0 as usize >= func.blocks().len()
                || else_block.is_some_and(|e| e.0 as usize >= func.blocks().len())
            {
                return Err("branch target does not exist".to_string());
            }
            Ok(())
        }
        InstKind::Unreachable => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::{ICmpPred, InstKind, Intrinsic, Value};
    use crate::module::Module;
    use crate::parser::parse_function;
    use crate::types::Type;

    fn assert_valid(text: &str) {
        let f = parse_function(text).unwrap();
        verify_function(&f).unwrap();
    }

    #[test]
    fn accepts_well_formed_functions() {
        assert_valid(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
        );
        assert_valid(
            "define i32 @mem(ptr %p, i64 %i) {\n\
             %a = getelementptr inbounds i32, ptr %p, i64 %i\n\
             %v = load i32, ptr %a, align 4\n\
             store i32 %v, ptr %p, align 4\n\
             ret i32 %v\n}",
        );
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let _ = b.add(x, Value::int(32, 1));
        let f = b.build(); // no ret
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("does not end with a terminator"));
        assert!(err.to_string().contains("@f"));
    }

    #[test]
    fn rejects_type_mismatches() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        // i32 + i8 constant: mismatched operands
        let bad = b.binary(crate::instruction::BinOp::Add, x, Value::int(8, 1));
        b.ret(Some(bad));
        let err = verify_function(&b.build()).unwrap_err();
        assert!(err.message.contains("mismatched types"));
    }

    #[test]
    fn rejects_invalid_flags() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let bad = b.binary_flagged(
            crate::instruction::BinOp::And,
            x,
            Value::int(32, 1),
            crate::flags::IntFlags::nuw(),
        );
        b.ret(Some(bad));
        let err = verify_function(&b.build()).unwrap_err();
        assert!(err.message.contains("not valid on 'and'"));
    }

    #[test]
    fn rejects_bad_casts_and_selects() {
        let mut b = FunctionBuilder::new("f", Type::i8());
        let x = b.add_param("x", Type::i8());
        // zext to a *narrower* width is invalid
        let bad = b.zext(x.clone(), Type::i8());
        b.ret(Some(bad));
        let err = verify_function(&b.build()).unwrap_err();
        assert!(err.message.contains("invalid 'zext'"));

        let mut b = FunctionBuilder::new("g", Type::i32());
        let x = b.add_param("x", Type::i32());
        let c = b.icmp(ICmpPred::Eq, x.clone(), Value::int(32, 0));
        // arms with mismatched types
        let sel = b.push(
            InstKind::Select { cond: c, on_true: x.clone(), on_false: Value::int(8, 0) },
            Type::i32(),
        );
        b.ret(Some(sel));
        let err = verify_function(&b.build()).unwrap_err();
        assert!(err.message.contains("mismatched types"));
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut b = FunctionBuilder::new("f", Type::i64());
        let x = b.add_param("x", Type::i32());
        b.ret(Some(x));
        let err = verify_function(&b.build()).unwrap_err();
        assert!(err.message.contains("does not match function return type"));
    }

    #[test]
    fn rejects_use_of_unplaced_instruction() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let v = b.add(x.clone(), Value::int(32, 1));
        b.ret(Some(v.clone()));
        let mut f = b.build();
        // Erase the add but keep the ret using it.
        if let Value::Inst(id) = v {
            f.erase_inst(id);
        }
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("not placed in any block"));
    }

    #[test]
    fn rejects_terminator_in_middle() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        b.ret(Some(x.clone()));
        b.ret(Some(x));
        let err = verify_function(&b.build()).unwrap_err();
        assert!(err.message.contains("not the last instruction"));
    }

    #[test]
    fn rejects_intrinsic_misuse() {
        let mut b = FunctionBuilder::new("f", Type::double());
        let x = b.add_param("x", Type::double());
        // umin on doubles
        let bad = b.push(
            InstKind::Call {
                intrinsic: Intrinsic::Umin,
                args: vec![x.clone(), x.clone()],
                fmf: Default::default(),
            },
            Type::double(),
        );
        b.ret(Some(bad));
        let err = verify_function(&b.build()).unwrap_err();
        assert!(err.message.contains("requires integer operands"));
    }

    #[test]
    fn verify_module_reports_function_name() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("broken", Type::i32());
        let x = b.add_param("x", Type::i32());
        let _ = b.add(x, Value::int(32, 1));
        m.add_function(b.build());
        let err = verify_module(&m).unwrap_err();
        assert_eq!(err.function, "broken");
    }

    #[test]
    fn bad_phi_and_branch_targets() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let phi = b.push(
            InstKind::Phi { incoming: vec![(x.clone(), crate::instruction::BlockId(9))] },
            Type::i32(),
        );
        b.ret(Some(phi));
        let err = verify_function(&b.build()).unwrap_err();
        assert!(err.message.contains("non-existent block"));
    }

}
