//! IR constants, including `undef` and `poison`.
//!
//! Constants appear as instruction operands. Vector constants are stored as a
//! list of scalar constants; the common LLVM shorthands `zeroinitializer` and
//! `splat (…)` are provided as constructors and recognised by the printer.
//!
//! # Examples
//!
//! ```
//! use lpo_ir::constant::Constant;
//! use lpo_ir::types::Type;
//!
//! let splat = Constant::splat(4, Constant::int(32, 255));
//! assert_eq!(splat.ty(), Type::vector(4, Type::i32()));
//! assert!(splat.is_splat());
//! ```

use crate::apint::ApInt;
use crate::types::{FloatKind, Type};
use std::fmt;

/// A compile-time constant value.
#[derive(Clone, Debug, PartialEq)]
pub enum Constant {
    /// An integer constant of a specific width.
    Int(ApInt),
    /// A floating-point constant. The value is stored as an `f64` regardless of
    /// kind; `half`/`float` constants are rounded on evaluation.
    Float(FloatKind, f64),
    /// The null pointer.
    NullPtr,
    /// An `undef` value of the given type: an arbitrary but fixed bit pattern.
    Undef(Type),
    /// A `poison` value of the given type: the result of violated assumptions.
    Poison(Type),
    /// A vector constant with one entry per lane.
    Vector(Vec<Constant>),
}

impl Constant {
    /// Creates an integer constant with the given width and value.
    pub fn int(width: u32, value: u128) -> Constant {
        Constant::Int(ApInt::new(width, value))
    }

    /// Creates an integer constant from a signed value.
    pub fn int_signed(width: u32, value: i128) -> Constant {
        Constant::Int(ApInt::from_i128(width, value))
    }

    /// Creates the boolean constant `true` or `false`.
    pub fn bool(value: bool) -> Constant {
        Constant::Int(ApInt::bool(value))
    }

    /// Creates a double-precision floating point constant.
    pub fn double(value: f64) -> Constant {
        Constant::Float(FloatKind::Double, value)
    }

    /// Creates a single-precision floating point constant.
    pub fn float(value: f32) -> Constant {
        Constant::Float(FloatKind::Float, value as f64)
    }

    /// Creates the all-zeros constant of the given type (LLVM `zeroinitializer`
    /// for vectors, `0`/`0.0`/`null` for scalars).
    ///
    /// # Panics
    ///
    /// Panics for `void`.
    pub fn zero(ty: &Type) -> Constant {
        match ty {
            Type::Void => panic!("no zero constant for void"),
            Type::Int(w) => Constant::Int(ApInt::zero(*w)),
            Type::Float(k) => Constant::Float(*k, 0.0),
            Type::Ptr => Constant::NullPtr,
            Type::Vector(n, elem) => {
                Constant::Vector(vec![Constant::zero(elem); *n as usize])
            }
        }
    }

    /// Creates a vector constant with every lane equal to `elem`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `elem` is itself a vector.
    pub fn splat(lanes: u32, elem: Constant) -> Constant {
        assert!(lanes > 0, "splat needs at least one lane");
        assert!(!matches!(elem, Constant::Vector(_)), "cannot splat a vector");
        Constant::Vector(vec![elem; lanes as usize])
    }

    /// The type of this constant.
    pub fn ty(&self) -> Type {
        match self {
            Constant::Int(v) => Type::Int(v.width()),
            Constant::Float(k, _) => Type::Float(*k),
            Constant::NullPtr => Type::Ptr,
            Constant::Undef(t) | Constant::Poison(t) => t.clone(),
            Constant::Vector(elems) => {
                Type::vector(elems.len() as u32, elems[0].ty())
            }
        }
    }

    /// Returns the integer value if this is a scalar integer constant.
    pub fn as_int(&self) -> Option<&ApInt> {
        match self {
            Constant::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the float value if this is a scalar float constant.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Constant::Float(_, v) => Some(*v),
            _ => None,
        }
    }

    /// Returns `true` if this constant is `poison` (or a vector with any poison lane).
    pub fn is_poison(&self) -> bool {
        match self {
            Constant::Poison(_) => true,
            Constant::Vector(elems) => elems.iter().any(Constant::is_poison),
            _ => false,
        }
    }

    /// Returns `true` if this constant is `undef` (or a vector with any undef lane).
    pub fn is_undef(&self) -> bool {
        match self {
            Constant::Undef(_) => true,
            Constant::Vector(elems) => elems.iter().any(Constant::is_undef),
            _ => false,
        }
    }

    /// Returns `true` if this is the all-zeros constant of its type.
    pub fn is_zero(&self) -> bool {
        match self {
            Constant::Int(v) => v.is_zero(),
            Constant::Float(_, v) => *v == 0.0,
            Constant::NullPtr => true,
            Constant::Vector(elems) => elems.iter().all(Constant::is_zero),
            _ => false,
        }
    }

    /// Returns `true` if this is an all-ones integer constant (scalar or vector).
    pub fn is_all_ones(&self) -> bool {
        match self {
            Constant::Int(v) => v.is_all_ones(),
            Constant::Vector(elems) => elems.iter().all(Constant::is_all_ones),
            _ => false,
        }
    }

    /// Returns `true` if this is the integer constant one (scalar or splat vector).
    pub fn is_one(&self) -> bool {
        match self {
            Constant::Int(v) => v.is_one(),
            Constant::Vector(elems) => elems.iter().all(Constant::is_one),
            _ => false,
        }
    }

    /// Returns `true` for vector constants whose lanes are all identical.
    pub fn is_splat(&self) -> bool {
        match self {
            Constant::Vector(elems) => elems.windows(2).all(|w| w[0] == w[1]),
            _ => false,
        }
    }

    /// For vectors, returns the splatted scalar if all lanes are identical.
    /// For scalars, returns the constant itself.
    pub fn splat_value(&self) -> Option<&Constant> {
        match self {
            Constant::Vector(elems) if self.is_splat() => elems.first(),
            Constant::Vector(_) => None,
            other => Some(other),
        }
    }

    /// If this constant is an integer scalar, or a splat vector of integers,
    /// returns the scalar integer value.
    pub fn splat_int(&self) -> Option<&ApInt> {
        self.splat_value().and_then(Constant::as_int)
    }

    /// The vector lanes, or a single-element slice view is not possible for
    /// scalars, so returns `None` for non-vector constants.
    pub fn lanes(&self) -> Option<&[Constant]> {
        match self {
            Constant::Vector(elems) => Some(elems),
            _ => None,
        }
    }
}

fn format_float(kind: FloatKind, value: f64) -> String {
    // LLVM prints simple decimal forms like 0.000000e+00; we follow that style
    // for finite values and use hex-ish spellings for specials.
    if value.is_nan() {
        "nan".to_string()
    } else if value == f64::INFINITY {
        "inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        let _ = kind;
        format!("{value:e}")
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v) if v.width() == 1 => {
                write!(f, "{}", if v.is_one() { "true" } else { "false" })
            }
            Constant::Int(v) => write!(f, "{}", v.sext_value()),
            Constant::Float(k, v) => write!(f, "{}", format_float(*k, *v)),
            Constant::NullPtr => write!(f, "null"),
            Constant::Undef(_) => write!(f, "undef"),
            Constant::Poison(_) => write!(f, "poison"),
            Constant::Vector(elems) => {
                if self.is_zero() {
                    return write!(f, "zeroinitializer");
                }
                if self.is_splat() {
                    let elem = &elems[0];
                    return write!(f, "splat ({} {})", elem.ty(), elem);
                }
                write!(f, "<")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", e.ty(), e)?;
                }
                write!(f, ">")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_types() {
        assert_eq!(Constant::int(32, 5).ty(), Type::i32());
        assert_eq!(Constant::bool(true).ty(), Type::i1());
        assert_eq!(Constant::double(1.5).ty(), Type::double());
        assert_eq!(Constant::NullPtr.ty(), Type::Ptr);
        assert_eq!(Constant::Undef(Type::i8()).ty(), Type::i8());
        assert_eq!(
            Constant::splat(4, Constant::int(32, 255)).ty(),
            Type::vector(4, Type::i32())
        );
    }

    #[test]
    fn zero_constants() {
        assert!(Constant::zero(&Type::i32()).is_zero());
        assert!(Constant::zero(&Type::double()).is_zero());
        assert!(Constant::zero(&Type::Ptr).is_zero());
        assert!(Constant::zero(&Type::vector(4, Type::i8())).is_zero());
        assert!(!Constant::int(8, 1).is_zero());
    }

    #[test]
    fn predicate_helpers() {
        assert!(Constant::int_signed(8, -1).is_all_ones());
        assert!(Constant::splat(2, Constant::int_signed(16, -1)).is_all_ones());
        assert!(Constant::int(8, 1).is_one());
        assert!(Constant::Poison(Type::i8()).is_poison());
        assert!(Constant::Undef(Type::i8()).is_undef());
        let mixed = Constant::Vector(vec![Constant::int(8, 1), Constant::Poison(Type::i8())]);
        assert!(mixed.is_poison());
        assert!(!mixed.is_splat());
    }

    #[test]
    fn splat_helpers() {
        let splat = Constant::splat(4, Constant::int(32, 7));
        assert!(splat.is_splat());
        assert_eq!(splat.splat_int().unwrap().zext_value(), 7);
        assert_eq!(Constant::int(32, 7).splat_int().unwrap().zext_value(), 7);
        let non_splat = Constant::Vector(vec![Constant::int(8, 1), Constant::int(8, 2)]);
        assert!(non_splat.splat_value().is_none());
        assert_eq!(non_splat.lanes().unwrap().len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Constant::int_signed(8, -2).to_string(), "-2");
        assert_eq!(Constant::NullPtr.to_string(), "null");
        assert_eq!(Constant::Poison(Type::i8()).to_string(), "poison");
        assert_eq!(Constant::Undef(Type::i8()).to_string(), "undef");
        assert_eq!(
            Constant::zero(&Type::vector(4, Type::i32())).to_string(),
            "zeroinitializer"
        );
        assert_eq!(
            Constant::splat(4, Constant::int(32, 255)).to_string(),
            "splat (i32 255)"
        );
        let mixed = Constant::Vector(vec![Constant::int(8, 1), Constant::int(8, 2)]);
        assert_eq!(mixed.to_string(), "<i8 1, i8 2>");
        assert_eq!(Constant::double(f64::NAN).to_string(), "nan");
        assert_eq!(Constant::double(f64::INFINITY).to_string(), "inf");
    }

    #[test]
    #[should_panic(expected = "cannot splat a vector")]
    fn splat_of_vector_rejected() {
        let inner = Constant::splat(2, Constant::int(8, 0));
        let _ = Constant::splat(2, inner);
    }
}
