//! Arbitrary-width (1–128 bit) two's-complement integers.
//!
//! LLVM IR integers carry an explicit bit width (`i1`, `i8`, `i32`, …).  This
//! module provides [`ApInt`], a small value type that mirrors the semantics of
//! LLVM's `APInt` for the widths the LPO reproduction needs (up to 128 bits).
//! All arithmetic wraps modulo `2^width`; helpers are provided to detect
//! signed/unsigned overflow so that `nuw`/`nsw` poison semantics can be
//! implemented on top.
//!
//! # Examples
//!
//! ```
//! use lpo_ir::apint::ApInt;
//!
//! let a = ApInt::new(8, 200);
//! let b = ApInt::new(8, 100);
//! let (sum, carried) = a.uadd_overflow(&b);
//! assert_eq!(sum.zext_value(), 44); // 300 mod 256
//! assert!(carried);
//! ```

use std::fmt;

/// A fixed-width two's-complement integer value with 1 to 128 bits.
///
/// The value is stored zero-extended in a `u128`; bits above `width` are
/// always zero (a canonical representation maintained by every operation).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApInt {
    width: u32,
    bits: u128,
}

impl ApInt {
    /// Maximum supported bit width.
    pub const MAX_WIDTH: u32 = 128;

    /// Creates a new value of the given width, truncating `value` to fit.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than [`ApInt::MAX_WIDTH`].
    #[inline]
    pub fn new(width: u32, value: u128) -> Self {
        assert!((1..=Self::MAX_WIDTH).contains(&width), "invalid integer width {width}");
        Self { width, bits: value & Self::mask(width) }
    }

    /// Creates a value from a signed integer, truncating to `width` bits.
    #[inline]
    pub fn from_i128(width: u32, value: i128) -> Self {
        Self::new(width, value as u128)
    }

    /// Creates the boolean value `true` (`i1 1`) or `false` (`i1 0`).
    pub fn bool(value: bool) -> Self {
        Self::new(1, value as u128)
    }

    /// The all-zeros value of the given width.
    pub fn zero(width: u32) -> Self {
        Self::new(width, 0)
    }

    /// The value one of the given width.
    pub fn one(width: u32) -> Self {
        Self::new(width, 1)
    }

    /// The all-ones value (`-1` / `UMAX`) of the given width.
    pub fn all_ones(width: u32) -> Self {
        Self::new(width, u128::MAX)
    }

    /// The largest signed value of the given width (`0111…1`).
    pub fn signed_max(width: u32) -> Self {
        Self::new(width, (Self::mask(width)) >> 1)
    }

    /// The smallest signed value of the given width (`1000…0`).
    pub fn signed_min(width: u32) -> Self {
        Self::new(width, 1u128 << (width - 1).min(127))
    }

    #[inline]
    fn mask(width: u32) -> u128 {
        if width >= 128 { u128::MAX } else { (1u128 << width) - 1 }
    }

    /// The small-integer fast path: the value as a `u64` when the width fits
    /// in one machine word. The interpreter's binop/cast kernels use this to
    /// run 64-bit-and-narrower arithmetic on native `u64`/`i64` operations
    /// instead of double-word `u128` ones.
    #[inline]
    fn small(&self) -> Option<u64> {
        if self.width <= 64 { Some(self.bits as u64) } else { None }
    }

    /// Rebuilds a value of `width <= 64` from a raw `u64`, masking to width.
    #[inline]
    fn from_small(width: u32, bits: u64) -> Self {
        debug_assert!(width <= 64);
        Self { width, bits: (bits as u128) & Self::mask(width) }
    }

    /// The value as a sign-extended `i64` (fast path for `width <= 64`).
    #[inline]
    fn small_signed(&self) -> Option<i64> {
        let v = self.small()?;
        Some(if self.width == 64 {
            v as i64
        } else if (v >> (self.width - 1)) & 1 == 1 {
            (v | !((1u64 << self.width) - 1)) as i64
        } else {
            v as i64
        })
    }

    /// The bit width of this value.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The raw, zero-extended value.
    #[inline]
    pub fn zext_value(&self) -> u128 {
        self.bits
    }

    /// The value interpreted as a signed (sign-extended) integer.
    #[inline]
    pub fn sext_value(&self) -> i128 {
        if self.width >= 128 {
            self.bits as i128
        } else if self.bits >> (self.width - 1) & 1 == 1 {
            (self.bits | !Self::mask(self.width)) as i128
        } else {
            self.bits as i128
        }
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.bits == 1
    }

    /// Returns `true` if every bit is set (i.e. the value is `-1`).
    pub fn is_all_ones(&self) -> bool {
        self.bits == Self::mask(self.width)
    }

    /// Returns `true` if the sign bit is set.
    pub fn is_negative(&self) -> bool {
        self.sext_value() < 0
    }

    /// Returns `true` if the value is a power of two (and non-zero).
    pub fn is_power_of_two(&self) -> bool {
        self.bits != 0 && self.bits & (self.bits - 1) == 0
    }

    /// Interprets an `i1` as a Rust `bool`.
    ///
    /// # Panics
    ///
    /// Panics if the width is not 1.
    pub fn as_bool(&self) -> bool {
        assert_eq!(self.width, 1, "as_bool on non-i1 value");
        self.bits == 1
    }

    // --- wrapping arithmetic -------------------------------------------------

    /// Wrapping addition modulo `2^width`.
    #[inline]
    pub fn add(&self, rhs: &Self) -> Self {
        if let Some(a) = self.small() {
            return Self::from_small(self.width, a.wrapping_add(rhs.bits as u64));
        }
        Self::new(self.width, self.bits.wrapping_add(rhs.bits))
    }

    /// Wrapping subtraction modulo `2^width`.
    #[inline]
    pub fn sub(&self, rhs: &Self) -> Self {
        if let Some(a) = self.small() {
            return Self::from_small(self.width, a.wrapping_sub(rhs.bits as u64));
        }
        Self::new(self.width, self.bits.wrapping_sub(rhs.bits))
    }

    /// Wrapping multiplication modulo `2^width`.
    #[inline]
    pub fn mul(&self, rhs: &Self) -> Self {
        if let Some(a) = self.small() {
            return Self::from_small(self.width, a.wrapping_mul(rhs.bits as u64));
        }
        Self::new(self.width, self.bits.wrapping_mul(rhs.bits))
    }

    /// Two's-complement negation.
    #[inline]
    pub fn neg(&self) -> Self {
        Self::new(self.width, self.bits.wrapping_neg())
    }

    /// Bitwise complement.
    #[inline]
    pub fn not(&self) -> Self {
        Self::new(self.width, !self.bits)
    }

    /// Unsigned division. Returns `None` when dividing by zero.
    #[inline]
    pub fn udiv(&self, rhs: &Self) -> Option<Self> {
        if rhs.is_zero() {
            return None;
        }
        if let (Some(a), Some(b)) = (self.small(), rhs.small()) {
            return Some(Self::from_small(self.width, a / b));
        }
        Some(Self::new(self.width, self.bits / rhs.bits))
    }

    /// Unsigned remainder. Returns `None` when dividing by zero.
    #[inline]
    pub fn urem(&self, rhs: &Self) -> Option<Self> {
        if rhs.is_zero() {
            return None;
        }
        if let (Some(a), Some(b)) = (self.small(), rhs.small()) {
            return Some(Self::from_small(self.width, a % b));
        }
        Some(Self::new(self.width, self.bits % rhs.bits))
    }

    /// Signed division. Returns `None` on division by zero or `INT_MIN / -1` overflow.
    #[inline]
    pub fn sdiv(&self, rhs: &Self) -> Option<Self> {
        if rhs.is_zero() {
            return None;
        }
        if let (Some(a), Some(b)) = (self.small_signed(), rhs.small_signed()) {
            let min = if self.width == 64 { i64::MIN } else { -(1i64 << (self.width - 1)) };
            if a == min && b == -1 {
                return None;
            }
            return Some(Self::from_small(self.width, a.wrapping_div(b) as u64));
        }
        let (a, b) = (self.sext_value(), rhs.sext_value());
        if a == Self::signed_min(self.width).sext_value() && b == -1 {
            return None;
        }
        Some(Self::from_i128(self.width, a.wrapping_div(b)))
    }

    /// Signed remainder. Returns `None` on division by zero or `INT_MIN % -1` overflow.
    #[inline]
    pub fn srem(&self, rhs: &Self) -> Option<Self> {
        if rhs.is_zero() {
            return None;
        }
        if let (Some(a), Some(b)) = (self.small_signed(), rhs.small_signed()) {
            let min = if self.width == 64 { i64::MIN } else { -(1i64 << (self.width - 1)) };
            if a == min && b == -1 {
                return None;
            }
            return Some(Self::from_small(self.width, a.wrapping_rem(b) as u64));
        }
        let (a, b) = (self.sext_value(), rhs.sext_value());
        if a == Self::signed_min(self.width).sext_value() && b == -1 {
            return None;
        }
        Some(Self::from_i128(self.width, a.wrapping_rem(b)))
    }

    // --- overflow-aware arithmetic ------------------------------------------

    /// Addition with unsigned-overflow detection.
    #[inline]
    pub fn uadd_overflow(&self, rhs: &Self) -> (Self, bool) {
        if self.width < 128 {
            let result = self.add(rhs);
            return (result, self.bits + rhs.bits > Self::mask(self.width));
        }
        (self.add(rhs), self.bits.checked_add(rhs.bits).is_none())
    }

    /// Addition with signed-overflow detection.
    #[inline]
    pub fn sadd_overflow(&self, rhs: &Self) -> (Self, bool) {
        if let (Some(a), Some(b)) = (self.small_signed(), rhs.small_signed()) {
            let result = self.add(rhs);
            // `i64` holds the exact sum of two `width <= 64` values iff it
            // does not overflow `i64` itself; either way overflow at *width*
            // is "exact sum != wrapped result".
            let overflow = match a.checked_add(b) {
                Some(v) => v != result.small_signed().expect("same width"),
                None => true,
            };
            return (result, overflow);
        }
        let result = self.add(rhs);
        let overflow = match self.sext_value().checked_add(rhs.sext_value()) {
            Some(v) => v != result.sext_value(),
            None => true,
        };
        (result, overflow)
    }

    /// Subtraction with unsigned-overflow (borrow) detection.
    #[inline]
    pub fn usub_overflow(&self, rhs: &Self) -> (Self, bool) {
        (self.sub(rhs), self.bits < rhs.bits)
    }

    /// Subtraction with signed-overflow detection.
    #[inline]
    pub fn ssub_overflow(&self, rhs: &Self) -> (Self, bool) {
        if let (Some(a), Some(b)) = (self.small_signed(), rhs.small_signed()) {
            let result = self.sub(rhs);
            let overflow = match a.checked_sub(b) {
                Some(v) => v != result.small_signed().expect("same width"),
                None => true,
            };
            return (result, overflow);
        }
        let result = self.sub(rhs);
        let overflow = match self.sext_value().checked_sub(rhs.sext_value()) {
            Some(v) => v != result.sext_value(),
            None => true,
        };
        (result, overflow)
    }

    /// Multiplication with unsigned-overflow detection.
    #[inline]
    pub fn umul_overflow(&self, rhs: &Self) -> (Self, bool) {
        if self.width <= 64 {
            let result = self.mul(rhs);
            let wide = (self.bits as u64 as u128) * (rhs.bits as u64 as u128);
            return (result, wide > Self::mask(self.width));
        }
        let result = self.mul(rhs);
        let overflow = match self.bits.checked_mul(rhs.bits) {
            Some(v) => v > Self::mask(self.width),
            None => true,
        };
        (result, overflow)
    }

    /// Multiplication with signed-overflow detection.
    #[inline]
    pub fn smul_overflow(&self, rhs: &Self) -> (Self, bool) {
        if let (Some(a), Some(b)) = (self.small_signed(), rhs.small_signed()) {
            let result = self.mul(rhs);
            let wide = (a as i128) * (b as i128);
            return (result, wide != result.small_signed().expect("same width") as i128);
        }
        let result = self.mul(rhs);
        let overflow = match self.sext_value().checked_mul(rhs.sext_value()) {
            Some(v) => v != result.sext_value(),
            None => true,
        };
        (result, overflow)
    }

    // --- shifts --------------------------------------------------------------

    /// Logical left shift. Returns `None` when the shift amount is `>= width`
    /// (poison in LLVM semantics).
    #[inline]
    pub fn shl(&self, amount: &Self) -> Option<Self> {
        let amt = amount.zext_value();
        if amt >= self.width as u128 {
            None
        } else {
            Some(Self::new(self.width, self.bits << amt))
        }
    }

    /// Logical right shift. Returns `None` when the shift amount is `>= width`.
    #[inline]
    pub fn lshr(&self, amount: &Self) -> Option<Self> {
        let amt = amount.zext_value();
        if amt >= self.width as u128 {
            None
        } else {
            Some(Self::new(self.width, self.bits >> amt))
        }
    }

    /// Arithmetic right shift. Returns `None` when the shift amount is `>= width`.
    #[inline]
    pub fn ashr(&self, amount: &Self) -> Option<Self> {
        let amt = amount.zext_value();
        if amt >= self.width as u128 {
            None
        } else {
            Some(Self::from_i128(self.width, self.sext_value() >> amt))
        }
    }

    // --- bitwise -------------------------------------------------------------

    /// Bitwise AND.
    #[inline]
    pub fn and(&self, rhs: &Self) -> Self {
        Self::new(self.width, self.bits & rhs.bits)
    }

    /// Bitwise OR.
    #[inline]
    pub fn or(&self, rhs: &Self) -> Self {
        Self::new(self.width, self.bits | rhs.bits)
    }

    /// Bitwise XOR.
    #[inline]
    pub fn xor(&self, rhs: &Self) -> Self {
        Self::new(self.width, self.bits ^ rhs.bits)
    }

    // --- width changes -------------------------------------------------------

    /// Zero-extends to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width < width`.
    pub fn zext(&self, new_width: u32) -> Self {
        assert!(new_width >= self.width, "zext to a narrower width");
        Self::new(new_width, self.bits)
    }

    /// Sign-extends to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width < width`.
    pub fn sext(&self, new_width: u32) -> Self {
        assert!(new_width >= self.width, "sext to a narrower width");
        Self::from_i128(new_width, self.sext_value())
    }

    /// Truncates to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width > width`.
    pub fn trunc(&self, new_width: u32) -> Self {
        assert!(new_width <= self.width, "trunc to a wider width");
        Self::new(new_width, self.bits)
    }

    /// Returns `true` if truncating to `new_width` and zero-extending back is lossless.
    pub fn trunc_is_nuw(&self, new_width: u32) -> bool {
        self.trunc(new_width).zext(self.width) == *self
    }

    /// Returns `true` if truncating to `new_width` and sign-extending back is lossless.
    pub fn trunc_is_nsw(&self, new_width: u32) -> bool {
        self.trunc(new_width).sext(self.width) == *self
    }

    // --- comparisons ---------------------------------------------------------

    /// Unsigned less-than.
    #[inline]
    pub fn ult(&self, rhs: &Self) -> bool {
        self.bits < rhs.bits
    }

    /// Unsigned less-or-equal.
    #[inline]
    pub fn ule(&self, rhs: &Self) -> bool {
        self.bits <= rhs.bits
    }

    /// Signed less-than.
    #[inline]
    pub fn slt(&self, rhs: &Self) -> bool {
        if let (Some(a), Some(b)) = (self.small_signed(), rhs.small_signed()) {
            return a < b;
        }
        self.sext_value() < rhs.sext_value()
    }

    /// Signed less-or-equal.
    #[inline]
    pub fn sle(&self, rhs: &Self) -> bool {
        if let (Some(a), Some(b)) = (self.small_signed(), rhs.small_signed()) {
            return a <= b;
        }
        self.sext_value() <= rhs.sext_value()
    }

    // --- bit counting & manipulation -----------------------------------------

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Number of leading zero bits within `width`.
    pub fn leading_zeros(&self) -> u32 {
        if self.bits == 0 {
            self.width
        } else {
            self.width - (128 - self.bits.leading_zeros())
        }
    }

    /// Number of trailing zero bits within `width`.
    pub fn trailing_zeros(&self) -> u32 {
        if self.bits == 0 { self.width } else { self.bits.trailing_zeros() }
    }

    /// Byte-swaps the value.
    ///
    /// # Panics
    ///
    /// Panics if the width is not a multiple of 8.
    pub fn bswap(&self) -> Self {
        assert!(self.width.is_multiple_of(8), "bswap requires a byte-multiple width");
        let bytes = (self.width / 8) as usize;
        let mut out: u128 = 0;
        for i in 0..bytes {
            let byte = (self.bits >> (8 * i)) & 0xff;
            out |= byte << (8 * (bytes - 1 - i));
        }
        Self::new(self.width, out)
    }

    /// Reverses the bits of the value.
    pub fn bitreverse(&self) -> Self {
        let mut out = 0u128;
        for i in 0..self.width {
            if (self.bits >> i) & 1 == 1 {
                out |= 1u128 << (self.width - 1 - i);
            }
        }
        Self::new(self.width, out)
    }

    /// Funnel shift left: concatenates `self` (high) with `low` and shifts left.
    pub fn fshl(&self, low: &Self, amount: &Self) -> Self {
        let w = self.width as u128;
        let amt = (amount.zext_value() % w) as u32;
        if amt == 0 {
            return *self;
        }
        let high_part = self.bits << amt;
        let low_part = low.bits >> (self.width - amt);
        Self::new(self.width, high_part | low_part)
    }

    /// Funnel shift right: concatenates `high` with `self` (low) and shifts right.
    pub fn fshr(&self, high: &Self, amount: &Self) -> Self {
        let w = self.width as u128;
        let amt = (amount.zext_value() % w) as u32;
        if amt == 0 {
            return *self;
        }
        let low_part = self.bits >> amt;
        let high_part = high.bits << (self.width - amt);
        Self::new(self.width, high_part | low_part)
    }

    // --- min/max/abs & saturating -------------------------------------------

    /// Unsigned minimum.
    pub fn umin(&self, rhs: &Self) -> Self {
        if self.ult(rhs) { *self } else { *rhs }
    }

    /// Unsigned maximum.
    pub fn umax(&self, rhs: &Self) -> Self {
        if self.ult(rhs) { *rhs } else { *self }
    }

    /// Signed minimum.
    pub fn smin(&self, rhs: &Self) -> Self {
        if self.slt(rhs) { *self } else { *rhs }
    }

    /// Signed maximum.
    pub fn smax(&self, rhs: &Self) -> Self {
        if self.slt(rhs) { *rhs } else { *self }
    }

    /// Absolute value. Overflows (returns `INT_MIN`) when the input is `INT_MIN`.
    pub fn abs(&self) -> Self {
        if self.is_negative() { self.neg() } else { *self }
    }

    /// Saturating unsigned addition.
    pub fn uadd_sat(&self, rhs: &Self) -> Self {
        let (v, o) = self.uadd_overflow(rhs);
        if o { Self::all_ones(self.width) } else { v }
    }

    /// Saturating signed addition.
    pub fn sadd_sat(&self, rhs: &Self) -> Self {
        let (v, o) = self.sadd_overflow(rhs);
        if !o {
            v
        } else if rhs.is_negative() {
            Self::signed_min(self.width)
        } else {
            Self::signed_max(self.width)
        }
    }

    /// Saturating unsigned subtraction.
    pub fn usub_sat(&self, rhs: &Self) -> Self {
        let (v, o) = self.usub_overflow(rhs);
        if o { Self::zero(self.width) } else { v }
    }

    /// Saturating signed subtraction.
    pub fn ssub_sat(&self, rhs: &Self) -> Self {
        let (v, o) = self.ssub_overflow(rhs);
        if !o {
            v
        } else if rhs.is_negative() {
            Self::signed_max(self.width)
        } else {
            Self::signed_min(self.width)
        }
    }
}

impl fmt::Debug for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{} {}", self.width, self.sext_value())
    }
}

impl fmt::Display for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sext_value())
    }
}

impl fmt::LowerHex for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_masks_to_width() {
        assert_eq!(ApInt::new(8, 0x1ff).zext_value(), 0xff);
        assert_eq!(ApInt::new(1, 3).zext_value(), 1);
        assert_eq!(ApInt::new(128, u128::MAX).zext_value(), u128::MAX);
    }

    #[test]
    #[should_panic(expected = "invalid integer width")]
    fn zero_width_panics() {
        let _ = ApInt::new(0, 0);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(ApInt::new(8, 0xff).sext_value(), -1);
        assert_eq!(ApInt::new(8, 0x80).sext_value(), -128);
        assert_eq!(ApInt::new(8, 0x7f).sext_value(), 127);
        assert_eq!(ApInt::from_i128(16, -2).zext_value(), 0xfffe);
    }

    #[test]
    fn wrapping_arithmetic() {
        let a = ApInt::new(8, 250);
        let b = ApInt::new(8, 10);
        assert_eq!(a.add(&b).zext_value(), 4);
        assert_eq!(b.sub(&a).sext_value(), 16);
        assert_eq!(a.mul(&b).zext_value(), 196); // 2500 mod 256
        assert_eq!(ApInt::new(8, 0).neg().zext_value(), 0);
        assert_eq!(ApInt::new(8, 1).neg().zext_value(), 255);
    }

    #[test]
    fn division_edge_cases() {
        let min = ApInt::signed_min(8);
        let neg1 = ApInt::all_ones(8);
        assert!(min.sdiv(&neg1).is_none());
        assert!(min.srem(&neg1).is_none());
        assert!(min.sdiv(&ApInt::zero(8)).is_none());
        assert_eq!(ApInt::new(8, 7).sdiv(&ApInt::from_i128(8, -2)).unwrap().sext_value(), -3);
        assert_eq!(ApInt::new(8, 7).srem(&ApInt::from_i128(8, -2)).unwrap().sext_value(), 1);
        assert_eq!(ApInt::new(8, 200).udiv(&ApInt::new(8, 3)).unwrap().zext_value(), 66);
    }

    #[test]
    fn overflow_detection() {
        let (v, o) = ApInt::new(8, 200).uadd_overflow(&ApInt::new(8, 100));
        assert_eq!(v.zext_value(), 44);
        assert!(o);
        let (_, o) = ApInt::new(8, 100).sadd_overflow(&ApInt::new(8, 100));
        assert!(o);
        let (_, o) = ApInt::new(8, 100).sadd_overflow(&ApInt::from_i128(8, -100));
        assert!(!o);
        let (_, o) = ApInt::new(8, 3).usub_overflow(&ApInt::new(8, 5));
        assert!(o);
        let (_, o) = ApInt::new(8, 16).umul_overflow(&ApInt::new(8, 16));
        assert!(o);
        let (_, o) = ApInt::from_i128(8, -128).smul_overflow(&ApInt::from_i128(8, -1));
        assert!(o);
    }

    #[test]
    fn shifts_out_of_range_are_poison() {
        let x = ApInt::new(8, 0b1011_0001);
        assert_eq!(x.shl(&ApInt::new(8, 1)).unwrap().zext_value(), 0b0110_0010);
        assert_eq!(x.lshr(&ApInt::new(8, 4)).unwrap().zext_value(), 0b1011);
        assert_eq!(x.ashr(&ApInt::new(8, 4)).unwrap().zext_value(), 0b1111_1011);
        assert!(x.shl(&ApInt::new(8, 8)).is_none());
        assert!(x.lshr(&ApInt::new(8, 9)).is_none());
        assert!(x.ashr(&ApInt::new(8, 200)).is_none());
    }

    #[test]
    fn width_changes() {
        let x = ApInt::new(8, 0xf0);
        assert_eq!(x.zext(16).zext_value(), 0x00f0);
        assert_eq!(x.sext(16).zext_value(), 0xfff0);
        assert_eq!(ApInt::new(16, 0x1234).trunc(8).zext_value(), 0x34);
        assert!(ApInt::new(16, 0x00ff).trunc_is_nuw(8));
        assert!(!ApInt::new(16, 0x01ff).trunc_is_nuw(8));
        assert!(ApInt::from_i128(16, -1).trunc_is_nsw(8));
        assert!(!ApInt::new(16, 0x00ff).trunc_is_nsw(8));
    }

    #[test]
    fn comparisons() {
        let a = ApInt::new(8, 0xff); // -1 signed, 255 unsigned
        let b = ApInt::new(8, 1);
        assert!(b.ult(&a));
        assert!(a.slt(&b));
        assert!(a.sle(&a));
        assert!(a.ule(&a));
    }

    #[test]
    fn bit_counting() {
        let x = ApInt::new(16, 0b0000_1100_0000_0000);
        assert_eq!(x.count_ones(), 2);
        assert_eq!(x.leading_zeros(), 4);
        assert_eq!(x.trailing_zeros(), 10);
        assert_eq!(ApInt::zero(32).leading_zeros(), 32);
        assert_eq!(ApInt::zero(32).trailing_zeros(), 32);
    }

    #[test]
    fn byte_and_bit_reversal() {
        assert_eq!(ApInt::new(32, 0x1234_5678).bswap().zext_value(), 0x7856_3412);
        assert_eq!(ApInt::new(16, 0xabcd).bswap().zext_value(), 0xcdab);
        assert_eq!(ApInt::new(8, 0b1000_0001).bitreverse().zext_value(), 0b1000_0001);
        assert_eq!(ApInt::new(8, 0b1100_0000).bitreverse().zext_value(), 0b0000_0011);
    }

    #[test]
    fn funnel_shifts() {
        let hi = ApInt::new(8, 0b1000_0000);
        let lo = ApInt::new(8, 0b0000_0001);
        // fshl(hi, lo, 1) = (hi:lo) << 1 taking high 8 bits = 0b0000_0000
        assert_eq!(hi.fshl(&lo, &ApInt::new(8, 1)).zext_value(), 0b0000_0000);
        assert_eq!(hi.fshl(&lo, &ApInt::new(8, 8)).zext_value(), hi.zext_value());
        // fshr(lo, hi, 1): (hi:lo) >> 1 taking low 8 bits = 0b0000_0000
        assert_eq!(lo.fshr(&hi, &ApInt::new(8, 1)).zext_value(), 0b0000_0000);
        let a = ApInt::new(8, 0b1010_1010);
        assert_eq!(a.fshl(&a, &ApInt::new(8, 4)).zext_value(), 0b1010_1010);
    }

    #[test]
    fn min_max_abs() {
        let a = ApInt::from_i128(8, -3);
        let b = ApInt::new(8, 5);
        assert_eq!(a.smin(&b), a);
        assert_eq!(a.smax(&b), b);
        assert_eq!(a.umin(&b), b); // -3 is 253 unsigned
        assert_eq!(a.umax(&b), a);
        assert_eq!(a.abs().zext_value(), 3);
        assert_eq!(ApInt::signed_min(8).abs(), ApInt::signed_min(8));
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(ApInt::new(8, 200).uadd_sat(&ApInt::new(8, 100)).zext_value(), 255);
        assert_eq!(ApInt::new(8, 100).sadd_sat(&ApInt::new(8, 100)).sext_value(), 127);
        assert_eq!(ApInt::from_i128(8, -100).sadd_sat(&ApInt::from_i128(8, -100)).sext_value(), -128);
        assert_eq!(ApInt::new(8, 3).usub_sat(&ApInt::new(8, 5)).zext_value(), 0);
        assert_eq!(ApInt::from_i128(8, -100).ssub_sat(&ApInt::new(8, 100)).sext_value(), -128);
        assert_eq!(ApInt::new(8, 100).ssub_sat(&ApInt::from_i128(8, -100)).sext_value(), 127);
    }

    #[test]
    fn display_formats() {
        let x = ApInt::from_i128(8, -1);
        assert_eq!(format!("{x}"), "-1");
        assert_eq!(format!("{x:x}"), "ff");
        assert_eq!(format!("{x:b}"), "11111111");
        assert_eq!(format!("{x:?}"), "i8 -1");
    }
}
