//! Functions, basic blocks and the instruction arena.
//!
//! A [`Function`] owns an arena of [`Instruction`]s; each [`BasicBlock`] holds
//! an ordered list of [`InstId`]s into that arena. This representation makes
//! the transformations the optimizer needs — replace-all-uses, erase, insert
//! before — cheap and simple while keeping the IR a plain owned value that can
//! be cloned, hashed and compared.
//!
//! # Def–use information
//!
//! Every function maintains a **use list** per arena slot: for each
//! instruction result, the ids of the placed instructions that use it (one
//! entry per use, so an instruction using a value twice appears twice,
//! including uses by block terminators and phi nodes). The lists are kept
//! coherent by the mutation API — [`append_inst`](Function::append_inst),
//! [`insert_inst`](Function::insert_inst),
//! [`insert_before`](Function::insert_before),
//! [`erase_inst`](Function::erase_inst),
//! [`replace_all_uses_with`](Function::replace_all_uses_with),
//! [`set_operand`](Function::set_operand) and
//! [`set_inst_kind`](Function::set_inst_kind) — which is what makes the
//! worklist-driven optimizer's "who uses this value" queries O(uses) instead
//! of a whole-arena scan. Code that edits operands behind the API's back
//! (e.g. through [`inst_mut`](Function::inst_mut)) must call
//! [`rebuild_use_lists`](Function::rebuild_use_lists) afterwards; the
//! verifier's coherence check ([`verify_use_lists`](Function::verify_use_lists))
//! rejects functions whose stored lists have gone stale.
//!
//! # Examples
//!
//! ```
//! use lpo_ir::builder::FunctionBuilder;
//! use lpo_ir::types::Type;
//! use lpo_ir::instruction::{BinOp, Value};
//!
//! let mut b = FunctionBuilder::new("src", Type::i32());
//! let x = b.add_param("x", Type::i32());
//! let one = b.add(x.clone(), Value::int(32, 1));
//! b.ret(Some(one));
//! let f = b.build();
//! assert_eq!(f.instruction_count(), 1); // ret is a terminator, add is counted
//! ```

use crate::instruction::{BlockId, InstId, InstKind, Instruction, Value};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// The parameter name without the leading `%`.
    pub name: String,
    /// The parameter type.
    pub ty: Type,
}

/// A basic block: a label plus an ordered list of instructions ending in a terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct BasicBlock {
    /// The block label (without the trailing `:`).
    pub name: String,
    /// Instruction ids in execution order.
    pub insts: Vec<InstId>,
}

impl BasicBlock {
    /// Creates an empty basic block with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), insts: Vec::new() }
    }
}

/// One value's use list with inline capacity: most instruction results have
/// one or two uses, so the common case is a plain memcpy on clone and never
/// touches the heap; lists longer than the inline capacity spill to a `Vec`.
#[derive(Clone, Debug)]
enum UseList {
    /// Up to [`USE_INLINE`] uses stored in place.
    Inline { len: u8, slots: [InstId; USE_INLINE] },
    /// The spilled representation.
    Heap(Vec<InstId>),
}

/// Inline capacity of a [`UseList`].
const USE_INLINE: usize = 3;

impl Default for UseList {
    fn default() -> Self {
        UseList::Inline { len: 0, slots: [InstId(0); USE_INLINE] }
    }
}

impl UseList {
    fn as_slice(&self) -> &[InstId] {
        match self {
            UseList::Inline { len, slots } => &slots[..*len as usize],
            UseList::Heap(list) => list,
        }
    }

    fn push(&mut self, user: InstId) {
        match self {
            UseList::Inline { len, slots } => {
                if (*len as usize) < USE_INLINE {
                    slots[*len as usize] = user;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(USE_INLINE * 2);
                    spilled.extend_from_slice(&slots[..]);
                    spilled.push(user);
                    *self = UseList::Heap(spilled);
                }
            }
            UseList::Heap(list) => list.push(user),
        }
    }

    /// Removes one occurrence of `user` (order is not preserved).
    fn remove_one(&mut self, user: InstId) {
        match self {
            UseList::Inline { len, slots } => {
                if let Some(index) = slots[..*len as usize].iter().position(|&u| u == user) {
                    slots[index] = slots[*len as usize - 1];
                    *len -= 1;
                }
            }
            UseList::Heap(list) => {
                if let Some(index) = list.iter().position(|&u| u == user) {
                    list.swap_remove(index);
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            UseList::Inline { len, .. } => *len == 0,
            UseList::Heap(list) => list.is_empty(),
        }
    }
}

/// An IR function.
#[derive(Clone, Debug)]
pub struct Function {
    /// The function name without the leading `@`.
    pub name: String,
    /// The declared parameters.
    pub params: Vec<Param>,
    /// The return type.
    pub ret_ty: Type,
    blocks: Vec<BasicBlock>,
    insts: Vec<Instruction>,
    /// Per-arena-slot use lists: `users[d]` holds one entry per use of
    /// `Value::Inst(d)` by a *placed* instruction, in recording order.
    /// Maintained by the mutation API; excluded from structural equality
    /// because two structurally equal functions can reach the same state
    /// through different mutation histories (and thus list orders).
    users: Vec<UseList>,
    /// Per-arena-slot placement flags, maintained alongside the use lists so
    /// "is this id still in a block" is O(1) for the optimizer's worklist.
    placed: Vec<bool>,
}

/// Structural equality: name, signature, blocks and arena contents. The
/// maintained use lists are derived data and deliberately not compared.
impl PartialEq for Function {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.params == other.params
            && self.ret_ty == other.ret_ty
            && self.blocks == other.blocks
            && self.insts == other.insts
    }
}

impl Function {
    /// Creates a function with a single empty `entry` block.
    pub fn new(name: impl Into<String>, ret_ty: Type) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
            ret_ty,
            blocks: vec![BasicBlock::new("entry")],
            insts: Vec::new(),
            users: Vec::new(),
            placed: Vec::new(),
        }
    }

    /// Creates a function with no blocks at all (the parser uses this).
    pub fn empty(name: impl Into<String>, ret_ty: Type) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
            ret_ty,
            blocks: Vec::new(),
            insts: Vec::new(),
            users: Vec::new(),
            placed: Vec::new(),
        }
    }

    // --- structural access ----------------------------------------------------

    /// The basic blocks in layout order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The id of the entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks.
    pub fn entry(&self) -> BlockId {
        assert!(!self.blocks.is_empty(), "function has no blocks");
        BlockId(0)
    }

    /// Looks up a block by id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Looks up a block mutably by id.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.0 as usize]
    }

    /// Finds a block id by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.name == name).map(|i| BlockId(i as u32))
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.blocks.push(BasicBlock::new(name));
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Looks up an instruction by id.
    pub fn inst(&self, id: InstId) -> &Instruction {
        &self.insts[id.0 as usize]
    }

    /// The size of the instruction arena (one more than the largest valid
    /// [`InstId`]), including unplaced slots. Dense per-instruction side
    /// tables — e.g. the interpreter's register file — are sized by this.
    pub fn inst_arena_len(&self) -> usize {
        self.insts.len()
    }

    /// Looks up an instruction mutably by id.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Instruction {
        &mut self.insts[id.0 as usize]
    }

    /// The result type of a value.
    ///
    /// # Panics
    ///
    /// Panics if an argument index is out of range.
    pub fn value_type(&self, value: &Value) -> Type {
        match value {
            Value::Arg(i) => self.params[*i].ty.clone(),
            Value::Inst(id) => self.inst(*id).ty.clone(),
            Value::Const(c) => c.ty(),
        }
    }

    /// Adds an instruction to the arena (not yet placed in any block).
    ///
    /// Unplaced instructions contribute no uses; their operands are recorded
    /// in the use lists when the instruction is placed.
    pub fn alloc_inst(&mut self, inst: Instruction) -> InstId {
        self.insts.push(inst);
        self.users.resize_with(self.insts.len(), UseList::default);
        self.placed.resize(self.insts.len(), false);
        InstId(self.insts.len() as u32 - 1)
    }

    /// Appends an instruction to the end of a block and returns its id.
    pub fn append_inst(&mut self, block: BlockId, inst: Instruction) -> InstId {
        let id = self.alloc_inst(inst);
        self.block_mut(block).insts.push(id);
        self.placed[id.0 as usize] = true;
        self.note_uses(id);
        id
    }

    /// Inserts an instruction into `block` immediately before the instruction
    /// at `position` (an index into the block's instruction list).
    pub fn insert_inst(&mut self, block: BlockId, position: usize, inst: Instruction) -> InstId {
        let id = self.alloc_inst(inst);
        self.block_mut(block).insts.insert(position, id);
        self.placed[id.0 as usize] = true;
        self.note_uses(id);
        id
    }

    /// Inserts an instruction immediately before an already-placed one and
    /// returns the new id.
    ///
    /// # Panics
    ///
    /// Panics if `before` is not placed in any block.
    pub fn insert_before(&mut self, before: InstId, inst: Instruction) -> InstId {
        let (block, position) = self
            .position_of(before)
            .expect("insert_before target must be placed in a block");
        self.insert_inst(block, position, inst)
    }

    /// The `(block, index-within-block)` of a placed instruction.
    pub fn position_of(&self, id: InstId) -> Option<(BlockId, usize)> {
        self.iter_blocks().find_map(|(block_id, block)| {
            block.insts.iter().position(|&i| i == id).map(|pos| (block_id, pos))
        })
    }

    /// Returns `true` if `id` is currently placed in some block (O(1) via
    /// the maintained placement flags).
    pub fn is_placed(&self, id: InstId) -> bool {
        self.placed.get(id.0 as usize).copied().unwrap_or(false)
    }

    /// Iterates over every instruction id currently placed in a block, in
    /// block layout order.
    pub fn iter_inst_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        self.blocks.iter().flat_map(|b| b.insts.iter().copied())
    }

    /// Iterates over every placed instruction, in block layout order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (InstId, &Instruction)> {
        self.iter_inst_ids().map(move |id| (id, self.inst(id)))
    }

    /// The number of non-terminator instructions currently placed in blocks.
    ///
    /// This matches the metric LPO's interestingness check uses: terminators
    /// (`ret`, `br`, `unreachable`) are control flow, not work.
    pub fn instruction_count(&self) -> usize {
        self.iter_insts().filter(|(_, i)| !i.is_terminator()).count()
    }

    /// The total number of placed instructions including terminators.
    pub fn total_instruction_count(&self) -> usize {
        self.iter_inst_ids().count()
    }

    // --- use-def manipulation --------------------------------------------------

    /// Records `user` in the use list of each of its instruction operands
    /// (one entry per use). Called when `user` is placed or its kind changes.
    fn note_uses(&mut self, user: InstId) {
        let Self { insts, users, .. } = self;
        insts[user.0 as usize].kind.for_each_operand(|op| {
            if let Value::Inst(def) = op {
                let slot = def.0 as usize;
                if slot >= users.len() {
                    users.resize_with(slot + 1, UseList::default);
                }
                users[slot].push(user);
            }
        });
    }

    /// Removes one use-list entry per instruction operand of `user`. Called
    /// when `user` is erased or its kind is about to change.
    fn forget_uses(&mut self, user: InstId) {
        let Self { insts, users, .. } = self;
        insts[user.0 as usize].kind.for_each_operand(|op| {
            if let Value::Inst(def) = op {
                users[def.0 as usize].remove_one(user);
            }
        });
    }

    /// Replaces every use of `from` (an instruction result) by placed
    /// instructions with `to`, keeping the use lists coherent.
    pub fn replace_all_uses_with(&mut self, from: InstId, to: &Value) {
        let uses = std::mem::take(&mut self.users[from.0 as usize]);
        for &user in uses.as_slice() {
            let mut replaced = 0usize;
            for op in self.insts[user.0 as usize].kind.operands_mut() {
                if matches!(op, Value::Inst(id) if *id == from) {
                    *op = to.clone();
                    replaced += 1;
                }
            }
            // A user appears in the list once per use but we rewrite all of
            // its matching operands on first encounter; only record the first
            // occurrence's worth of new uses and skip later duplicates.
            if replaced > 0 {
                if let Value::Inst(to_id) = to {
                    for _ in 0..replaced {
                        self.users[to_id.0 as usize].push(user);
                    }
                }
            }
        }
    }

    /// Deprecated spelling of [`replace_all_uses_with`](Self::replace_all_uses_with).
    pub fn replace_all_uses(&mut self, from: InstId, to: &Value) {
        self.replace_all_uses_with(from, to);
    }

    /// Removes an instruction from its block (the arena slot becomes dead)
    /// and drops its operands' use-list entries.
    ///
    /// Uses *of* the instruction are left dangling; callers should
    /// [`replace_all_uses_with`](Self::replace_all_uses_with) first.
    pub fn erase_inst(&mut self, id: InstId) {
        let mut was_placed = false;
        for block in &mut self.blocks {
            let before = block.insts.len();
            block.insts.retain(|i| *i != id);
            was_placed |= block.insts.len() != before;
        }
        if was_placed {
            self.placed[id.0 as usize] = false;
            self.forget_uses(id);
        }
    }

    /// Replaces operand `index` (in [`InstKind::operands`] order) of a placed
    /// instruction, keeping the use lists coherent.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the instruction's operand list.
    pub fn set_operand(&mut self, user: InstId, index: usize, value: Value) {
        let old = self.insts[user.0 as usize]
            .kind
            .operands()
            .get(index)
            .map(|op| (*op).clone())
            .unwrap_or_else(|| panic!("operand index {index} out of range for %{}", self.inst(user).name));
        if let Value::Inst(old_def) = old {
            self.users[old_def.0 as usize].remove_one(user);
        }
        if let Value::Inst(new_def) = &value {
            if new_def.0 as usize >= self.users.len() {
                self.users.resize_with(new_def.0 as usize + 1, UseList::default);
            }
            self.users[new_def.0 as usize].push(user);
        }
        *self.insts[user.0 as usize].kind.operands_mut()[index] = value;
    }

    /// Rewrites a placed instruction's operation and result type in place,
    /// keeping its name, position and the use lists coherent.
    pub fn set_inst_kind(&mut self, id: InstId, kind: InstKind, ty: Type) {
        self.forget_uses(id);
        let inst = &mut self.insts[id.0 as usize];
        inst.kind = kind;
        inst.ty = ty;
        self.note_uses(id);
    }

    /// Rebuilds every use list from a scan of the placed instructions. Needed
    /// only after operand edits that bypassed the mutation API (e.g. direct
    /// [`inst_mut`](Self::inst_mut) surgery).
    pub fn rebuild_use_lists(&mut self) {
        self.users.clear();
        self.users.resize_with(self.insts.len(), UseList::default);
        self.placed.clear();
        self.placed.resize(self.insts.len(), false);
        let placed: Vec<InstId> = self.iter_inst_ids().collect();
        for id in placed {
            self.placed[id.0 as usize] = true;
            self.note_uses(id);
        }
    }

    /// Checks the stored use lists against a fresh scan of the placed
    /// instructions. Runs on every [`verify_function`](crate::verifier::verify_function),
    /// so it is written to cost one counter allocation: per-slot totals must
    /// match, and each (user, def) pair's multiplicity in the stored list
    /// must equal its operand multiplicity — together that is exact multiset
    /// equality without materializing or sorting the expected lists.
    ///
    /// # Errors
    ///
    /// Returns a description of the first incoherent list: a recorded use
    /// that no placed instruction has, or a real use missing from the lists.
    pub fn verify_use_lists(&self) -> Result<(), String> {
        let mut expected_counts: Vec<u32> = vec![0; self.insts.len()];
        for (_, inst) in self.iter_insts() {
            for op in inst.kind.operands() {
                if let Value::Inst(def) = op {
                    if def.0 as usize >= expected_counts.len() {
                        return Err(format!(
                            "instruction '%{}' references arena slot {} beyond the arena",
                            inst.name, def.0
                        ));
                    }
                    expected_counts[def.0 as usize] += 1;
                }
            }
        }
        for (slot, &want) in expected_counts.iter().enumerate() {
            let got = self.users.get(slot).map(|list| list.as_slice().len()).unwrap_or(0);
            if got != want as usize {
                return Err(format!(
                    "use list of '%{}' is stale: {} recorded use(s), {} actual",
                    self.insts[slot].name, got, want
                ));
            }
        }
        for (user, inst) in self.iter_insts() {
            let operands = inst.kind.operands();
            for (index, op) in operands.iter().enumerate() {
                if let Value::Inst(def) = op {
                    // Check each (user, def) pair once, at its first operand
                    // occurrence.
                    if operands[..index]
                        .iter()
                        .any(|prior| matches!(prior, Value::Inst(d) if d == def))
                    {
                        continue;
                    }
                    let multiplicity = operands
                        .iter()
                        .filter(|o| matches!(o, Value::Inst(d) if d == def))
                        .count();
                    let recorded =
                        self.uses_of(*def).iter().filter(|&&u| u == user).count();
                    if recorded != multiplicity {
                        return Err(format!(
                            "use list of '%{}' is stale: user '%{}' recorded {} time(s), used {} time(s)",
                            self.inst(*def).name, inst.name, recorded, multiplicity
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Raw use-list access: one entry per use of `id` by a placed
    /// instruction, in recording order (an instruction using the value
    /// twice appears twice).
    pub fn uses_of(&self, id: InstId) -> &[InstId] {
        self.users.get(id.0 as usize).map(UseList::as_slice).unwrap_or(&[])
    }

    /// Returns the ids of placed instructions that use the result of `id`
    /// (each user once, in first-use recording order).
    pub fn users_of(&self, id: InstId) -> Vec<InstId> {
        let mut out: Vec<InstId> = Vec::new();
        for &user in self.uses_of(id) {
            if !out.contains(&user) {
                out.push(user);
            }
        }
        out
    }

    /// Returns how many placed instructions use the result of `id` (distinct
    /// users, matching the historical whole-arena scan).
    pub fn num_users(&self, id: InstId) -> usize {
        self.users_of(id).len()
    }

    /// Returns `true` if the result of `id` has no users among placed instructions.
    pub fn is_unused(&self, id: InstId) -> bool {
        self.users.get(id.0 as usize).map(UseList::is_empty).unwrap_or(true)
    }

    /// Rebuilds the arena, dropping unplaced instructions and renumbering ids.
    ///
    /// Returns the mapping from old ids to new ids.
    pub fn compact(&mut self) -> HashMap<InstId, InstId> {
        let mut mapping = HashMap::new();
        let mut new_insts = Vec::new();
        for block in &self.blocks {
            for &old_id in &block.insts {
                let new_id = InstId(new_insts.len() as u32);
                new_insts.push(self.insts[old_id.0 as usize].clone());
                mapping.insert(old_id, new_id);
            }
        }
        for inst in &mut new_insts {
            for op in inst.kind.operands_mut() {
                if let Value::Inst(id) = op {
                    *id = mapping[id];
                }
            }
        }
        for block in &mut self.blocks {
            for id in &mut block.insts {
                *id = mapping[id];
            }
        }
        self.insts = new_insts;
        self.rebuild_use_lists();
        mapping
    }

    /// Finds a placed instruction by result name.
    pub fn inst_by_name(&self, name: &str) -> Option<InstId> {
        self.iter_insts().find(|(_, i)| i.name == name).map(|(id, _)| id)
    }

    /// Finds a parameter index by name.
    pub fn param_by_name(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// A short human-readable description of a value, used in diagnostics.
    pub fn describe_value(&self, value: &Value) -> String {
        match value {
            Value::Arg(i) => format!("%{}", self.params[*i].name),
            Value::Inst(id) => format!("%{}", self.inst(*id).name),
            Value::Const(c) => c.to_string(),
        }
    }

    /// Returns the value returned by the (single) `ret` instruction, if any.
    pub fn return_value(&self) -> Option<&Value> {
        self.iter_insts().find_map(|(_, inst)| match &inst.kind {
            InstKind::Ret { value } => value.as_ref(),
            _ => None,
        })
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print_function(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::constant::Constant;
    use crate::instruction::BinOp;

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let y = b.add_param("y", Type::i32());
        let sum = b.add(x.clone(), y.clone());
        let doubled = b.add(sum.clone(), sum.clone());
        b.ret(Some(doubled));
        b.build()
    }

    #[test]
    fn structural_queries() {
        let f = sample();
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.instruction_count(), 2);
        assert_eq!(f.total_instruction_count(), 3);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.value_type(&Value::Arg(0)), Type::i32());
        assert!(f.block_by_name("entry").is_some());
        assert!(f.block_by_name("missing").is_none());
    }

    #[test]
    fn users_and_rauw() {
        let mut f = sample();
        let first = f.block(BlockId(0)).insts[0];
        let second = f.block(BlockId(0)).insts[1];
        assert_eq!(f.users_of(first), vec![second]);
        assert_eq!(f.num_users(second), 1); // used by ret
        assert!(!f.is_unused(first));

        // Replace the first add with the constant 7 everywhere.
        f.replace_all_uses(first, &Value::Const(Constant::int(32, 7)));
        assert!(f.is_unused(first));
        f.erase_inst(first);
        assert_eq!(f.instruction_count(), 1);
        match &f.inst(second).kind {
            InstKind::Binary { op: BinOp::Add, lhs, rhs, .. } => {
                assert!(lhs.is_const());
                assert!(rhs.is_const());
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn compact_renumbers_and_drops_dead_slots() {
        let mut f = sample();
        let first = f.block(BlockId(0)).insts[0];
        f.replace_all_uses(first, &Value::Const(Constant::int(32, 7)));
        f.erase_inst(first);
        let before_count = f.instruction_count();
        let mapping = f.compact();
        assert_eq!(f.instruction_count(), before_count);
        assert!(!mapping.contains_key(&first));
        // All operand references must point at live arena slots.
        for (_, inst) in f.iter_insts() {
            for op in inst.kind.operands() {
                if let Value::Inst(id) = op {
                    assert!((id.0 as usize) < f.total_instruction_count());
                }
            }
        }
    }

    #[test]
    fn insert_before_position() {
        let mut f = sample();
        let entry = f.entry();
        let new_inst = Instruction::new(
            InstKind::Binary {
                op: BinOp::Mul,
                lhs: Value::Arg(0),
                rhs: Value::int(32, 3),
                flags: Default::default(),
            },
            Type::i32(),
            "m",
        );
        f.insert_inst(entry, 0, new_inst);
        let first = f.block(entry).insts[0];
        assert_eq!(f.inst(first).name, "m");
        assert_eq!(f.instruction_count(), 3);
    }

    #[test]
    fn lookup_by_name_and_return_value() {
        let f = sample();
        assert!(f.inst_by_name("t0").is_some());
        assert!(f.inst_by_name("nope").is_none());
        assert_eq!(f.param_by_name("y"), Some(1));
        assert!(f.return_value().is_some());
        assert_eq!(f.describe_value(&Value::Arg(0)), "%x");
        assert_eq!(f.describe_value(&Value::int(32, 5)), "5");
    }

    #[test]
    #[should_panic(expected = "function has no blocks")]
    fn entry_of_empty_function_panics() {
        let f = Function::empty("f", Type::Void);
        let _ = f.entry();
    }
}
