//! Functions, basic blocks and the instruction arena.
//!
//! A [`Function`] owns an arena of [`Instruction`]s; each [`BasicBlock`] holds
//! an ordered list of [`InstId`]s into that arena. This representation makes
//! the transformations the optimizer needs — replace-all-uses, erase, insert
//! before — cheap and simple while keeping the IR a plain owned value that can
//! be cloned, hashed and compared.
//!
//! # Examples
//!
//! ```
//! use lpo_ir::builder::FunctionBuilder;
//! use lpo_ir::types::Type;
//! use lpo_ir::instruction::{BinOp, Value};
//!
//! let mut b = FunctionBuilder::new("src", Type::i32());
//! let x = b.add_param("x", Type::i32());
//! let one = b.add(x.clone(), Value::int(32, 1));
//! b.ret(Some(one));
//! let f = b.build();
//! assert_eq!(f.instruction_count(), 1); // ret is a terminator, add is counted
//! ```

use crate::instruction::{BlockId, InstId, InstKind, Instruction, Value};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// The parameter name without the leading `%`.
    pub name: String,
    /// The parameter type.
    pub ty: Type,
}

/// A basic block: a label plus an ordered list of instructions ending in a terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct BasicBlock {
    /// The block label (without the trailing `:`).
    pub name: String,
    /// Instruction ids in execution order.
    pub insts: Vec<InstId>,
}

impl BasicBlock {
    /// Creates an empty basic block with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), insts: Vec::new() }
    }
}

/// An IR function.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// The function name without the leading `@`.
    pub name: String,
    /// The declared parameters.
    pub params: Vec<Param>,
    /// The return type.
    pub ret_ty: Type,
    blocks: Vec<BasicBlock>,
    insts: Vec<Instruction>,
}

impl Function {
    /// Creates a function with a single empty `entry` block.
    pub fn new(name: impl Into<String>, ret_ty: Type) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
            ret_ty,
            blocks: vec![BasicBlock::new("entry")],
            insts: Vec::new(),
        }
    }

    /// Creates a function with no blocks at all (the parser uses this).
    pub fn empty(name: impl Into<String>, ret_ty: Type) -> Self {
        Self { name: name.into(), params: Vec::new(), ret_ty, blocks: Vec::new(), insts: Vec::new() }
    }

    // --- structural access ----------------------------------------------------

    /// The basic blocks in layout order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The id of the entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks.
    pub fn entry(&self) -> BlockId {
        assert!(!self.blocks.is_empty(), "function has no blocks");
        BlockId(0)
    }

    /// Looks up a block by id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Looks up a block mutably by id.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.0 as usize]
    }

    /// Finds a block id by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.name == name).map(|i| BlockId(i as u32))
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.blocks.push(BasicBlock::new(name));
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Looks up an instruction by id.
    pub fn inst(&self, id: InstId) -> &Instruction {
        &self.insts[id.0 as usize]
    }

    /// The size of the instruction arena (one more than the largest valid
    /// [`InstId`]), including unplaced slots. Dense per-instruction side
    /// tables — e.g. the interpreter's register file — are sized by this.
    pub fn inst_arena_len(&self) -> usize {
        self.insts.len()
    }

    /// Looks up an instruction mutably by id.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Instruction {
        &mut self.insts[id.0 as usize]
    }

    /// The result type of a value.
    ///
    /// # Panics
    ///
    /// Panics if an argument index is out of range.
    pub fn value_type(&self, value: &Value) -> Type {
        match value {
            Value::Arg(i) => self.params[*i].ty.clone(),
            Value::Inst(id) => self.inst(*id).ty.clone(),
            Value::Const(c) => c.ty(),
        }
    }

    /// Adds an instruction to the arena (not yet placed in any block).
    pub fn alloc_inst(&mut self, inst: Instruction) -> InstId {
        self.insts.push(inst);
        InstId(self.insts.len() as u32 - 1)
    }

    /// Appends an instruction to the end of a block and returns its id.
    pub fn append_inst(&mut self, block: BlockId, inst: Instruction) -> InstId {
        let id = self.alloc_inst(inst);
        self.block_mut(block).insts.push(id);
        id
    }

    /// Inserts an instruction into `block` immediately before the instruction
    /// at `position` (an index into the block's instruction list).
    pub fn insert_inst(&mut self, block: BlockId, position: usize, inst: Instruction) -> InstId {
        let id = self.alloc_inst(inst);
        self.block_mut(block).insts.insert(position, id);
        id
    }

    /// Iterates over every instruction id currently placed in a block, in
    /// block layout order.
    pub fn iter_inst_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        self.blocks.iter().flat_map(|b| b.insts.iter().copied())
    }

    /// Iterates over every placed instruction, in block layout order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (InstId, &Instruction)> {
        self.iter_inst_ids().map(move |id| (id, self.inst(id)))
    }

    /// The number of non-terminator instructions currently placed in blocks.
    ///
    /// This matches the metric LPO's interestingness check uses: terminators
    /// (`ret`, `br`, `unreachable`) are control flow, not work.
    pub fn instruction_count(&self) -> usize {
        self.iter_insts().filter(|(_, i)| !i.is_terminator()).count()
    }

    /// The total number of placed instructions including terminators.
    pub fn total_instruction_count(&self) -> usize {
        self.iter_inst_ids().count()
    }

    // --- use-def manipulation --------------------------------------------------

    /// Replaces every use of `from` (an instruction result) with `to`.
    pub fn replace_all_uses(&mut self, from: InstId, to: &Value) {
        for inst in &mut self.insts {
            for op in inst.kind.operands_mut() {
                if matches!(op, Value::Inst(id) if *id == from) {
                    *op = to.clone();
                }
            }
        }
    }

    /// Removes an instruction from its block (the arena slot becomes dead).
    ///
    /// Uses of the instruction are left dangling; callers should
    /// [`replace_all_uses`](Self::replace_all_uses) first.
    pub fn erase_inst(&mut self, id: InstId) {
        for block in &mut self.blocks {
            block.insts.retain(|i| *i != id);
        }
    }

    /// Returns the ids of placed instructions that use the result of `id`.
    pub fn users_of(&self, id: InstId) -> Vec<InstId> {
        self.iter_insts()
            .filter(|(_, inst)| {
                inst.kind.operands().iter().any(|op| matches!(op, Value::Inst(i) if *i == id))
            })
            .map(|(uid, _)| uid)
            .collect()
    }

    /// Returns how many placed instructions use the result of `id`.
    pub fn num_users(&self, id: InstId) -> usize {
        self.users_of(id).len()
    }

    /// Returns `true` if the result of `id` has no users among placed instructions.
    pub fn is_unused(&self, id: InstId) -> bool {
        self.num_users(id) == 0
    }

    /// Rebuilds the arena, dropping unplaced instructions and renumbering ids.
    ///
    /// Returns the mapping from old ids to new ids.
    pub fn compact(&mut self) -> HashMap<InstId, InstId> {
        let mut mapping = HashMap::new();
        let mut new_insts = Vec::new();
        for block in &self.blocks {
            for &old_id in &block.insts {
                let new_id = InstId(new_insts.len() as u32);
                new_insts.push(self.insts[old_id.0 as usize].clone());
                mapping.insert(old_id, new_id);
            }
        }
        for inst in &mut new_insts {
            for op in inst.kind.operands_mut() {
                if let Value::Inst(id) = op {
                    *id = mapping[id];
                }
            }
        }
        for block in &mut self.blocks {
            for id in &mut block.insts {
                *id = mapping[id];
            }
        }
        self.insts = new_insts;
        mapping
    }

    /// Finds a placed instruction by result name.
    pub fn inst_by_name(&self, name: &str) -> Option<InstId> {
        self.iter_insts().find(|(_, i)| i.name == name).map(|(id, _)| id)
    }

    /// Finds a parameter index by name.
    pub fn param_by_name(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// A short human-readable description of a value, used in diagnostics.
    pub fn describe_value(&self, value: &Value) -> String {
        match value {
            Value::Arg(i) => format!("%{}", self.params[*i].name),
            Value::Inst(id) => format!("%{}", self.inst(*id).name),
            Value::Const(c) => c.to_string(),
        }
    }

    /// Returns the value returned by the (single) `ret` instruction, if any.
    pub fn return_value(&self) -> Option<&Value> {
        self.iter_insts().find_map(|(_, inst)| match &inst.kind {
            InstKind::Ret { value } => value.as_ref(),
            _ => None,
        })
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print_function(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::constant::Constant;
    use crate::instruction::BinOp;

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let y = b.add_param("y", Type::i32());
        let sum = b.add(x.clone(), y.clone());
        let doubled = b.add(sum.clone(), sum.clone());
        b.ret(Some(doubled));
        b.build()
    }

    #[test]
    fn structural_queries() {
        let f = sample();
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.instruction_count(), 2);
        assert_eq!(f.total_instruction_count(), 3);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.value_type(&Value::Arg(0)), Type::i32());
        assert!(f.block_by_name("entry").is_some());
        assert!(f.block_by_name("missing").is_none());
    }

    #[test]
    fn users_and_rauw() {
        let mut f = sample();
        let first = f.block(BlockId(0)).insts[0];
        let second = f.block(BlockId(0)).insts[1];
        assert_eq!(f.users_of(first), vec![second]);
        assert_eq!(f.num_users(second), 1); // used by ret
        assert!(!f.is_unused(first));

        // Replace the first add with the constant 7 everywhere.
        f.replace_all_uses(first, &Value::Const(Constant::int(32, 7)));
        assert!(f.is_unused(first));
        f.erase_inst(first);
        assert_eq!(f.instruction_count(), 1);
        match &f.inst(second).kind {
            InstKind::Binary { op: BinOp::Add, lhs, rhs, .. } => {
                assert!(lhs.is_const());
                assert!(rhs.is_const());
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn compact_renumbers_and_drops_dead_slots() {
        let mut f = sample();
        let first = f.block(BlockId(0)).insts[0];
        f.replace_all_uses(first, &Value::Const(Constant::int(32, 7)));
        f.erase_inst(first);
        let before_count = f.instruction_count();
        let mapping = f.compact();
        assert_eq!(f.instruction_count(), before_count);
        assert!(!mapping.contains_key(&first));
        // All operand references must point at live arena slots.
        for (_, inst) in f.iter_insts() {
            for op in inst.kind.operands() {
                if let Value::Inst(id) = op {
                    assert!((id.0 as usize) < f.total_instruction_count());
                }
            }
        }
    }

    #[test]
    fn insert_before_position() {
        let mut f = sample();
        let entry = f.entry();
        let new_inst = Instruction::new(
            InstKind::Binary {
                op: BinOp::Mul,
                lhs: Value::Arg(0),
                rhs: Value::int(32, 3),
                flags: Default::default(),
            },
            Type::i32(),
            "m",
        );
        f.insert_inst(entry, 0, new_inst);
        let first = f.block(entry).insts[0];
        assert_eq!(f.inst(first).name, "m");
        assert_eq!(f.instruction_count(), 3);
    }

    #[test]
    fn lookup_by_name_and_return_value() {
        let f = sample();
        assert!(f.inst_by_name("t0").is_some());
        assert!(f.inst_by_name("nope").is_none());
        assert_eq!(f.param_by_name("y"), Some(1));
        assert!(f.return_value().is_some());
        assert_eq!(f.describe_value(&Value::Arg(0)), "%x");
        assert_eq!(f.describe_value(&Value::int(32, 5)), "5");
    }

    #[test]
    #[should_panic(expected = "function has no blocks")]
    fn entry_of_empty_function_panics() {
        let f = Function::empty("f", Type::Void);
        let _ = f.entry();
    }
}
