//! Textual printing of IR in an LLVM-flavoured syntax.
//!
//! The printer and the [parser](crate::parser) are round-trip compatible: any
//! printed function can be parsed back into a structurally equal function.
//! This property is exercised by property-based tests and is what allows the
//! simulated LLM in `lpo-llm` to exchange *text* with the pipeline, exactly as
//! the paper's LLMs do.

use crate::constant::Constant;
use crate::function::Function;
use crate::instruction::{InstKind, Instruction, Value};
use crate::module::Module;
use std::fmt::Write;

/// Prints a full module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    if !module.name.is_empty() {
        let _ = writeln!(out, "; ModuleID = '{}'", module.name);
    }
    for (i, func) in module.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(func));
    }
    out
}

/// Prints a single function definition.
pub fn print_function(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .map(|p| format!("{} %{}", p.ty, p.name))
        .collect();
    let _ = writeln!(out, "define {} @{}({}) {{", func.ret_ty, func.name, params.join(", "));
    let multi_block = func.blocks().len() > 1;
    for (idx, block) in func.blocks().iter().enumerate() {
        if multi_block || idx > 0 || block.name != "entry" {
            let _ = writeln!(out, "{}:", block.name);
        }
        for &inst_id in &block.insts {
            let _ = writeln!(out, "  {}", print_instruction(func, func.inst(inst_id)));
        }
    }
    out.push_str("}\n");
    out
}

/// Prints an operand with its type prefix, e.g. `i32 %x` or `<4 x i32> splat (i32 255)`.
pub fn typed_operand(func: &Function, value: &Value) -> String {
    format!("{} {}", func.value_type(value), operand(func, value))
}

/// Prints an operand without a type prefix, e.g. `%x`, `255`, `zeroinitializer`.
pub fn operand(func: &Function, value: &Value) -> String {
    match value {
        Value::Arg(i) => format!("%{}", func.params[*i].name),
        Value::Inst(id) => format!("%{}", func.inst(*id).name),
        Value::Const(c) => c.to_string(),
    }
}

fn flags_prefix(flags: &crate::flags::IntFlags) -> String {
    if flags.is_empty() {
        String::new()
    } else {
        format!("{flags} ")
    }
}

fn fmf_prefix(fmf: &crate::flags::FastMathFlags) -> String {
    if fmf.is_empty() {
        String::new()
    } else {
        format!("{fmf} ")
    }
}

/// Prints one instruction (without leading indentation).
pub fn print_instruction(func: &Function, inst: &Instruction) -> String {
    let lhs = if inst.produces_value() {
        format!("%{} = ", inst.name)
    } else {
        String::new()
    };
    let body = match &inst.kind {
        InstKind::Binary { op, lhs: a, rhs: b, flags } => format!(
            "{} {}{} {}, {}",
            op.mnemonic(),
            flags_prefix(flags),
            func.value_type(a),
            operand(func, a),
            operand(func, b)
        ),
        InstKind::FBinary { op, lhs: a, rhs: b, fmf } => format!(
            "{} {}{} {}, {}",
            op.mnemonic(),
            fmf_prefix(fmf),
            func.value_type(a),
            operand(func, a),
            operand(func, b)
        ),
        InstKind::ICmp { pred, lhs: a, rhs: b } => format!(
            "icmp {} {} {}, {}",
            pred.mnemonic(),
            func.value_type(a),
            operand(func, a),
            operand(func, b)
        ),
        InstKind::FCmp { pred, lhs: a, rhs: b } => format!(
            "fcmp {} {} {}, {}",
            pred.mnemonic(),
            func.value_type(a),
            operand(func, a),
            operand(func, b)
        ),
        InstKind::Select { cond, on_true, on_false } => format!(
            "select {}, {}, {}",
            typed_operand(func, cond),
            typed_operand(func, on_true),
            typed_operand(func, on_false)
        ),
        InstKind::Cast { op, value, flags } => format!(
            "{} {}{} to {}",
            op.mnemonic(),
            flags_prefix(flags),
            typed_operand(func, value),
            inst.ty
        ),
        InstKind::Call { intrinsic, args, fmf } => {
            let arg_list: Vec<String> = args.iter().map(|a| typed_operand(func, a)).collect();
            format!(
                "call {}{} @{}({})",
                fmf_prefix(fmf),
                inst.ty,
                intrinsic.full_name(&inst.ty),
                arg_list.join(", ")
            )
        }
        InstKind::Load { ptr, align } => format!(
            "load {}, {}, align {}",
            inst.ty,
            typed_operand(func, ptr),
            align
        ),
        InstKind::Store { value, ptr, align } => format!(
            "store {}, {}, align {}",
            typed_operand(func, value),
            typed_operand(func, ptr),
            align
        ),
        InstKind::Gep { elem_ty, base, index, inbounds, nuw } => {
            let mut attrs = String::new();
            if *inbounds {
                attrs.push_str("inbounds ");
            }
            if *nuw {
                attrs.push_str("nuw ");
            }
            format!(
                "getelementptr {}{}, {}, {}",
                attrs,
                elem_ty,
                typed_operand(func, base),
                typed_operand(func, index)
            )
        }
        InstKind::Alloca { ty } => format!("alloca {ty}"),
        InstKind::ExtractElement { vector, index } => format!(
            "extractelement {}, {}",
            typed_operand(func, vector),
            typed_operand(func, index)
        ),
        InstKind::InsertElement { vector, element, index } => format!(
            "insertelement {}, {}, {}",
            typed_operand(func, vector),
            typed_operand(func, element),
            typed_operand(func, index)
        ),
        InstKind::ShuffleVector { a, b, mask } => {
            let mask_str: Vec<String> = mask
                .iter()
                .map(|m| if *m < 0 { "i32 poison".to_string() } else { format!("i32 {m}") })
                .collect();
            format!(
                "shufflevector {}, {}, <{} x i32> <{}>",
                typed_operand(func, a),
                typed_operand(func, b),
                mask.len(),
                mask_str.join(", ")
            )
        }
        InstKind::Phi { incoming } => {
            let ty = &inst.ty;
            let entries: Vec<String> = incoming
                .iter()
                .map(|(v, bb)| format!("[ {}, %{} ]", operand(func, v), func.block(*bb).name))
                .collect();
            format!("phi {} {}", ty, entries.join(", "))
        }
        InstKind::Freeze { value } => format!("freeze {}", typed_operand(func, value)),
        InstKind::Ret { value } => match value {
            Some(v) => format!("ret {}", typed_operand(func, v)),
            None => "ret void".to_string(),
        },
        InstKind::Br { cond, then_block, else_block } => match (cond, else_block) {
            (Some(c), Some(e)) => format!(
                "br {}, label %{}, label %{}",
                typed_operand(func, c),
                func.block(*then_block).name,
                func.block(*e).name
            ),
            _ => format!("br label %{}", func.block(*then_block).name),
        },
        InstKind::Unreachable => "unreachable".to_string(),
    };
    format!("{lhs}{body}")
}

/// Prints a constant with its type prefix, as it would appear as an operand.
pub fn typed_constant(constant: &Constant) -> String {
    format!("{} {}", constant.ty(), constant)
}

/// Returns the header line of a function definition (used in diagnostics).
pub fn signature(func: &Function) -> String {
    let params: Vec<String> = func.params.iter().map(|p| format!("{} %{}", p.ty, p.name)).collect();
    format!("define {} @{}({})", func.ret_ty, func.name, params.join(", "))
}

/// Pretty-prints the type of each named value; useful in error messages.
pub fn describe_types(func: &Function) -> String {
    let mut out = String::new();
    for p in &func.params {
        let _ = writeln!(out, "%{}: {}", p.name, p.ty);
    }
    for (_, inst) in func.iter_insts() {
        if inst.produces_value() {
            let _ = writeln!(out, "%{}: {}", inst.name, inst.ty);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::{ICmpPred, Value};
    use crate::types::Type;

    #[test]
    fn prints_clamp_like_function() {
        // Mirrors Figure 1b of the paper.
        let mut b = FunctionBuilder::new("src", Type::i8());
        let x = b.add_param("0", Type::i32());
        let c = b.icmp(ICmpPred::Slt, x.clone(), Value::int(32, 0));
        let m = b.umin(x, Value::int(32, 255));
        let t = b.trunc_nuw(m, Type::i8());
        let s = b.select(c, Value::int(8, 0), t);
        b.ret(Some(s));
        let f = b.build();
        let text = print_function(&f);
        assert!(text.contains("define i8 @src(i32 %0)"));
        assert!(text.contains("icmp slt i32 %0, 0"));
        assert!(text.contains("call i32 @llvm.umin.i32(i32 %0, i32 255)"));
        assert!(text.contains("trunc nuw i32"));
        assert!(text.contains("select i1"));
        assert!(text.contains("ret i8"));
        // Single-block functions omit the entry label, like LLVM output.
        assert!(!text.contains("entry:"));
    }

    #[test]
    fn prints_memory_and_vector_ops() {
        let v4i32 = Type::vector(4, Type::i32());
        let mut b = FunctionBuilder::new("v", Type::vector(4, Type::i8()));
        let a0 = b.add_param("a0", Type::i64());
        let a1 = b.add_param("a1", Type::Ptr);
        let p = b.gep(Type::i32(), a1.clone(), a0, true, true);
        let load = b.load(v4i32.clone(), p.clone(), 4);
        let zero = b.const_of(&v4i32, 0);
        let cmp = b.icmp(ICmpPred::Slt, load.clone(), zero);
        let umin = b.umin(load.clone(), b.const_of(&v4i32, 255));
        let tr = b.trunc_nuw(umin, Type::vector(4, Type::i8()));
        let zero8 = b.const_of(&Type::vector(4, Type::i8()), 0);
        let sel = b.select(cmp, zero8, tr);
        b.store(sel.clone(), p, 1);
        b.ret(Some(sel));
        let f = b.build();
        let text = print_function(&f);
        assert!(text.contains("getelementptr inbounds nuw i32, ptr %a1, i64 %a0"));
        assert!(text.contains("load <4 x i32>, ptr %t0, align 4"));
        assert!(text.contains("icmp slt <4 x i32> %t1, zeroinitializer"));
        assert!(text.contains("call <4 x i32> @llvm.umin.v4i32(<4 x i32> %t1, <4 x i32> splat (i32 255))"));
        assert!(text.contains("store <4 x i8> %t5, ptr %t0, align 1"));
    }

    #[test]
    fn prints_control_flow() {
        let mut b = FunctionBuilder::new("g", Type::i32());
        let x = b.add_param("x", Type::i32());
        let t = b.add_block("then");
        let e = b.add_block("exit");
        let c = b.icmp(ICmpPred::Eq, x.clone(), Value::int(32, 0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(e);
        b.switch_to(e);
        b.ret(Some(x));
        let f = b.build();
        let text = print_function(&f);
        assert!(text.contains("entry:"));
        assert!(text.contains("br i1 %t0, label %then, label %exit"));
        assert!(text.contains("br label %exit"));
        assert!(text.contains("then:"));
        assert!(text.contains("exit:"));
    }

    #[test]
    fn signature_and_type_dump() {
        let mut b = FunctionBuilder::new("sig", Type::Void);
        let _ = b.add_param("p", Type::Ptr);
        b.ret(None);
        let f = b.build();
        assert_eq!(signature(&f), "define void @sig(ptr %p)");
        assert!(describe_types(&f).contains("%p: ptr"));
        assert!(print_function(&f).contains("ret void"));
    }

    #[test]
    fn module_header() {
        let m = Module {
            name: "demo.ll".into(),
            functions: vec![],
        };
        assert!(print_module(&m).contains("; ModuleID = 'demo.ll'"));
    }

    use crate::module::Module;
}
