//! The cost tables and estimator.

use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, CastOp, FBinOp, InstId, InstKind, Intrinsic, Value};
use std::collections::HashMap;

/// The micro-architectures the cost model knows about.
///
/// `Btver2Like` mirrors the AMD Jaguar-class core the paper uses with
/// `llvm-mca` (2-wide issue, slow division); `GenericModern` is a wider core
/// used by the ablation benches to show the interestingness verdicts are not
/// an artefact of one latency table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Target {
    /// A 2-wide, in-order-ish small core (AMD btver2 flavour).
    #[default]
    Btver2Like,
    /// A 4-wide big core with faster multiplication and division.
    GenericModern,
}

impl Target {
    /// Instructions issued per cycle.
    pub fn issue_width(self) -> f64 {
        match self {
            Target::Btver2Like => 2.0,
            Target::GenericModern => 4.0,
        }
    }

    fn latency(self, kind: &InstKind) -> f64 {
        let slow = self == Target::Btver2Like;
        match kind {
            InstKind::Binary { op, .. } => match op {
                BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => 1.0,
                BinOp::Shl | BinOp::LShr | BinOp::AShr => 1.0,
                BinOp::Mul => 3.0,
                BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem => {
                    if slow {
                        25.0
                    } else {
                        14.0
                    }
                }
            },
            InstKind::FBinary { op, .. } => match op {
                FBinOp::FAdd | FBinOp::FSub => 3.0,
                FBinOp::FMul => if slow { 4.0 } else { 3.0 },
                FBinOp::FDiv | FBinOp::FRem => if slow { 19.0 } else { 11.0 },
            },
            InstKind::ICmp { .. } => 1.0,
            InstKind::FCmp { .. } => 2.0,
            InstKind::Select { .. } => 1.0,
            InstKind::Cast { op, .. } => match op {
                CastOp::Trunc | CastOp::ZExt | CastOp::SExt | CastOp::Bitcast => 1.0,
                CastOp::PtrToInt | CastOp::IntToPtr => 1.0,
                _ => 3.0, // int<->fp conversions
            },
            InstKind::Call { intrinsic, .. } => match intrinsic {
                Intrinsic::Umin | Intrinsic::Umax | Intrinsic::Smin | Intrinsic::Smax => 1.0,
                Intrinsic::Abs | Intrinsic::Ctpop => if slow { 2.0 } else { 1.0 },
                Intrinsic::Ctlz | Intrinsic::Cttz | Intrinsic::Bswap => 1.0,
                Intrinsic::Bitreverse => if slow { 6.0 } else { 3.0 },
                Intrinsic::Fshl | Intrinsic::Fshr => if slow { 3.0 } else { 1.0 },
                Intrinsic::UaddSat | Intrinsic::SaddSat | Intrinsic::UsubSat | Intrinsic::SsubSat => 2.0,
                Intrinsic::Fabs | Intrinsic::Copysign => 1.0,
                Intrinsic::Minnum | Intrinsic::Maxnum => 2.0,
                Intrinsic::Sqrt => if slow { 21.0 } else { 12.0 },
                Intrinsic::Fma => if slow { 5.0 } else { 4.0 },
            },
            InstKind::Load { .. } => if slow { 4.0 } else { 3.0 },
            InstKind::Store { .. } => 1.0,
            InstKind::Gep { .. } => 1.0,
            InstKind::Alloca { .. } => 1.0,
            InstKind::ExtractElement { .. } | InstKind::InsertElement { .. } => if slow { 2.0 } else { 1.0 },
            InstKind::ShuffleVector { .. } => if slow { 2.0 } else { 1.0 },
            InstKind::Phi { .. } | InstKind::Freeze { .. } => 0.0,
            InstKind::Ret { .. } | InstKind::Br { .. } | InstKind::Unreachable => 0.0,
        }
    }

    fn micro_ops(self, kind: &InstKind, is_vector: bool) -> f64 {
        let base: f64 = match kind {
            InstKind::Binary { op, .. } if op.is_division() => 4.0,
            InstKind::Call { intrinsic, .. } => match intrinsic {
                Intrinsic::Sqrt | Intrinsic::Fma => 2.0,
                Intrinsic::UaddSat | Intrinsic::SaddSat | Intrinsic::UsubSat | Intrinsic::SsubSat => 2.0,
                _ => 1.0,
            },
            InstKind::Phi { .. } | InstKind::Ret { .. } | InstKind::Br { .. } | InstKind::Unreachable => 0.0,
            InstKind::Freeze { .. } => 0.0,
            _ => 1.0,
        };
        // On the small core, 128-bit vector operations crack into two µops.
        if is_vector && self == Target::Btver2Like {
            base * 2.0
        } else {
            base
        }
    }
}

/// The estimate for one function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Number of non-terminator instructions.
    pub instructions: usize,
    /// Total micro-ops.
    pub micro_ops: f64,
    /// Length (in cycles) of the longest data-dependence chain.
    pub critical_path: f64,
    /// The reported cycle estimate: `max(micro_ops / issue_width, critical_path)`.
    pub total_cycles: f64,
}

impl CostEstimate {
    /// Returns `true` if `self` is strictly cheaper than `other` in either
    /// metric the interestingness check uses (instruction count or cycles).
    pub fn is_better_than(&self, other: &CostEstimate) -> bool {
        self.instructions < other.instructions || self.total_cycles < other.total_cycles
    }

    /// Returns `true` if `self` is no worse than `other` in both metrics.
    pub fn is_no_worse_than(&self, other: &CostEstimate) -> bool {
        self.instructions <= other.instructions && self.total_cycles <= other.total_cycles
    }
}

/// The static performance estimator.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostModel {
    target: Target,
}

impl CostModel {
    /// Creates a cost model for the given target.
    pub fn new(target: Target) -> Self {
        Self { target }
    }

    /// The target this model describes.
    pub fn target(&self) -> Target {
        self.target
    }

    /// Estimates the cost of a function (all blocks, straight-line assumption).
    pub fn estimate(&self, func: &Function) -> CostEstimate {
        let mut micro_ops = 0.0;
        let mut finish_time: HashMap<InstId, f64> = HashMap::new();
        let mut critical_path: f64 = 0.0;

        for (id, inst) in func.iter_insts() {
            let is_vector = inst.ty.is_vector()
                || inst
                    .kind
                    .operands()
                    .iter()
                    .any(|op| func.value_type(op).is_vector());
            micro_ops += self.target.micro_ops(&inst.kind, is_vector);
            let ready: f64 = inst
                .kind
                .operands()
                .iter()
                .filter_map(|op| match op {
                    Value::Inst(dep) => finish_time.get(dep).copied(),
                    _ => None,
                })
                .fold(0.0, f64::max);
            let done = ready + self.target.latency(&inst.kind);
            finish_time.insert(id, done);
            critical_path = critical_path.max(done);
        }

        let throughput_bound = micro_ops / self.target.issue_width();
        CostEstimate {
            instructions: func.instruction_count(),
            micro_ops,
            critical_path,
            total_cycles: throughput_bound.max(critical_path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    fn cost(text: &str) -> CostEstimate {
        CostModel::new(Target::Btver2Like).estimate(&parse_function(text).unwrap())
    }

    #[test]
    fn counts_instructions_and_cycles() {
        let c = cost("define i32 @f(i32 %x) {\n %a = mul i32 %x, 3\n %b = add i32 %a, 1\n ret i32 %b\n}");
        assert_eq!(c.instructions, 2);
        assert_eq!(c.critical_path, 4.0);
        assert!(c.total_cycles >= 4.0);
    }

    #[test]
    fn independent_chains_do_not_serialize() {
        // Two independent adds: critical path 1 + final add = 2.
        let c = cost(
            "define i32 @f(i32 %x, i32 %y) {\n %a = add i32 %x, 1\n %b = add i32 %y, 2\n %c = add i32 %a, %b\n ret i32 %c\n}",
        );
        assert_eq!(c.critical_path, 2.0);
        assert_eq!(c.instructions, 3);
    }

    #[test]
    fn the_paper_clamp_candidate_is_cheaper() {
        // Figure 1b (4 instructions) vs Figure 1c (3 instructions).
        let src = cost(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
        );
        let tgt = cost(
            "define i8 @tgt(i32 %0) {\n\
             %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
             %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             ret i8 %4\n}",
        );
        assert!(tgt.is_better_than(&src));
        assert!(tgt.instructions < src.instructions);
    }

    #[test]
    fn division_dominates_cost() {
        let div = cost("define i32 @f(i32 %x, i32 %y) {\n %r = udiv i32 %x, %y\n ret i32 %r\n}");
        let shift = cost("define i32 @g(i32 %x) {\n %r = lshr i32 %x, 3\n ret i32 %r\n}");
        assert!(div.total_cycles > 10.0 * shift.total_cycles);
    }

    #[test]
    fn vector_ops_cost_more_on_the_small_core() {
        let text = "define <4 x i32> @f(<4 x i32> %x) {\n %r = add <4 x i32> %x, splat (i32 1)\n ret <4 x i32> %r\n}";
        let small = CostModel::new(Target::Btver2Like).estimate(&parse_function(text).unwrap());
        let big = CostModel::new(Target::GenericModern).estimate(&parse_function(text).unwrap());
        assert!(small.micro_ops > big.micro_ops);
    }

    #[test]
    fn comparisons_between_estimates() {
        let a = CostEstimate { instructions: 3, micro_ops: 3.0, critical_path: 3.0, total_cycles: 3.0 };
        let b = CostEstimate { instructions: 4, micro_ops: 4.0, critical_path: 3.0, total_cycles: 3.0 };
        assert!(a.is_better_than(&b));
        assert!(a.is_no_worse_than(&b));
        assert!(!b.is_no_worse_than(&a));
        let c = CostEstimate { instructions: 3, micro_ops: 3.0, critical_path: 5.0, total_cycles: 5.0 };
        assert!(!c.is_better_than(&a));
        assert!(a.is_better_than(&c));
    }

    #[test]
    fn throughput_bound_applies_to_wide_flat_code() {
        // Eight independent adds on a 2-wide machine need at least 4 cycles
        // even though the critical path is 1.
        let mut text = String::from("define i32 @f(i32 %x) {\n");
        for i in 0..8 {
            text.push_str(&format!(" %a{i} = add i32 %x, {i}\n"));
        }
        text.push_str(" ret i32 %a0\n}");
        let c = cost(&text);
        assert_eq!(c.critical_path, 1.0);
        assert!(c.total_cycles >= 4.0);
    }

    #[test]
    fn terminators_and_phis_are_free() {
        let c = cost("define void @f() {\n ret void\n}");
        assert_eq!(c.instructions, 0);
        assert_eq!(c.total_cycles, 0.0);
    }
}
