//! # lpo-mca
//!
//! A static, table-driven cost model in the spirit of `llvm-mca`: it estimates
//! how many cycles a straight-line instruction sequence takes on a concrete
//! (synthetic) micro-architecture. The LPO interestingness check compares the
//! original and candidate functions with these estimates (plus instruction
//! count), exactly as the paper does with `llvm-mca` on the `btver2` CPU.
//!
//! Two pieces make up the estimate:
//!
//! * **throughput**: total micro-ops divided by the issue width;
//! * **latency**: the critical path through the data-flow graph using
//!   per-opcode latencies.
//!
//! The reported `total_cycles` is the maximum of the two, which mirrors how a
//! simple in-order bound behaves and is monotone in both "fewer instructions"
//! and "shorter dependence chains".
//!
//! ```
//! use lpo_mca::{CostModel, Target};
//! use lpo_ir::parser::parse_function;
//!
//! let f = parse_function("define i32 @f(i32 %x) {\n %a = mul i32 %x, 3\n %b = add i32 %a, 1\n ret i32 %b\n}")?;
//! let cost = CostModel::new(Target::Btver2Like).estimate(&f);
//! assert_eq!(cost.instructions, 2);
//! assert!(cost.total_cycles >= 4.0); // mul(3) + add(1) on the critical path
//! # Ok::<(), lpo_ir::parser::ParseError>(())
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

pub mod model;

pub use model::{CostEstimate, CostModel, Target};
