//! Persistence glue between the pipeline and the durable
//! [`lpo_store::VerdictStore`]: version strings, verdict serialization, and
//! checkpoint keys.
//!
//! The store itself is content-agnostic (it moves opaque blobs); this module
//! owns the two blob formats —
//! [`lpo_tv::refine::Verdict`] records for the verified-once-ever
//! cache, and [`CaseReport`](crate::report::CaseReport) checkpoint records
//! (see [`CaseReport::checkpoint_blob`](crate::report::CaseReport::checkpoint_blob))
//! for `--resume` — plus the versioning that keeps stale records from ever
//! being replayed.
//!
//! # Versioning
//!
//! A stored verdict is replayed only under the exact
//! `(pipeline revision, model profile)` it was recorded under:
//!
//! * [`PIPELINE_REVISION`] must be bumped by any change that can alter a
//!   Stage-3 verdict or a case report (verifier semantics, input generation,
//!   canonicalization, prompt construction, ...). Old records then simply
//!   stop matching — they are never migrated, never trusted.
//! * the model profile is part of the key so one store file can serve
//!   many-model experiments without cross-talk. Verdicts are in principle
//!   model-independent (they relate a source/candidate digest pair), but
//!   sharing them across profiles buys little and versioning them per
//!   profile keeps the replay path trivially byte-identical per run key.
//!
//! # Determinism
//!
//! Every blob round-trips exactly: a replayed verdict reproduces the same
//! `Verdict` value (including the full counterexample text fed back to the
//! model), so a run with a warm store is byte-identical to a cold one —
//! `tests/determinism.rs` pins this.

use lpo_tv::refine::{Counterexample, Verdict, VerdictTier};

/// The pipeline revision stamped into every store record. Bump on any change
/// that can alter a verdict or case report (see the module docs).
///
/// r2: verdict blobs and checkpoint records carry the deciding
/// [`VerdictTier`] (abstract pre-verification tier).
pub const PIPELINE_REVISION: u32 = 2;

/// The version string store records carry: pipeline revision + model profile.
pub fn store_version(model_profile: &str) -> String {
    format!("r{PIPELINE_REVISION}/{model_profile}")
}

/// The store key of one case inside one run: round, input position, and the
/// input's structural digest (so a changed input misses instead of replaying
/// a stale report).
pub fn case_key(round: u64, case_index: usize, digest: u64) -> String {
    format!("round{round}/case{case_index}/{digest:016x}")
}

/// Unit separator between verdict-blob fields. The joined fields are all
/// text this codebase renders itself (reasons, behaviour descriptions) and
/// never contain control characters; a blob that fails to parse is treated
/// as a miss, never trusted.
const SEP: char = '\x1f';

/// Prefix of the optional trailing tier field.
const TIER_PREFIX: &str = "tier=";

/// Serializes a [`Verdict`] plus the [`VerdictTier`] that decided it into a
/// store blob. The tier rides as an optional trailing `tier=<name>` field so
/// the decoder stays tolerant of records written without one.
pub fn encode_verdict(verdict: &Verdict, tier: Option<VerdictTier>) -> String {
    let mut blob = match verdict {
        Verdict::Correct { inputs_checked, exhaustive } => {
            format!("correct{SEP}{inputs_checked}{SEP}{exhaustive}")
        }
        Verdict::Incorrect(cex) => {
            let mut blob = format!(
                "incorrect{SEP}{}{SEP}{}{SEP}{}",
                cex.reason, cex.src_behaviour, cex.tgt_behaviour
            );
            for (name, value) in &cex.args {
                blob.push(SEP);
                blob.push_str(name);
                blob.push(SEP);
                blob.push_str(value);
            }
            blob
        }
        Verdict::Error(message) => format!("error{SEP}{message}"),
    };
    if let Some(tier) = tier {
        blob.push(SEP);
        blob.push_str(TIER_PREFIX);
        blob.push_str(tier.as_str());
    }
    blob
}

/// Splits an optional trailing `tier=<name>` field off a field list. A last
/// field that carries the prefix but not a known tier name is malformed.
fn split_tier(fields: &mut Vec<&str>) -> Result<Option<VerdictTier>, ()> {
    match fields.last().and_then(|f| f.strip_prefix(TIER_PREFIX)) {
        Some(name) => {
            let tier = VerdictTier::parse(name).ok_or(())?;
            fields.pop();
            Ok(Some(tier))
        }
        None => Ok(None),
    }
}

/// Parses a blob produced by [`encode_verdict`]. `None` = malformed; the
/// caller recomputes. The tier half is `None` for records that predate it
/// (argument names and values never contain `tier=`, they are rendered
/// `%name = <value>` pairs, so the trailing field is unambiguous).
pub fn decode_verdict(blob: &str) -> Option<(Verdict, Option<VerdictTier>)> {
    let mut fields: Vec<&str> = blob.split(SEP).collect();
    let tier = split_tier(&mut fields).ok()?;
    let mut fields = fields.into_iter();
    let verdict = match fields.next()? {
        "correct" => {
            let inputs_checked = fields.next()?.parse::<usize>().ok()?;
            let exhaustive = fields.next()?.parse::<bool>().ok()?;
            fields
                .next()
                .is_none()
                .then_some(Verdict::Correct { inputs_checked, exhaustive })?
        }
        "incorrect" => {
            let reason = fields.next()?.to_string();
            let src_behaviour = fields.next()?.to_string();
            let tgt_behaviour = fields.next()?.to_string();
            let rest: Vec<&str> = fields.collect();
            if !rest.len().is_multiple_of(2) {
                return None;
            }
            let args = rest
                .chunks(2)
                .map(|pair| (pair[0].to_string(), pair[1].to_string()))
                .collect();
            Verdict::Incorrect(Counterexample { reason, args, src_behaviour, tgt_behaviour })
        }
        "error" => {
            let message = fields.next()?.to_string();
            fields.next().is_none().then_some(Verdict::Error(message))?
        }
        _ => return None,
    };
    Some((verdict, tier))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_blobs_round_trip() {
        let verdicts = [
            Verdict::Correct { inputs_checked: 10752, exhaustive: false },
            Verdict::Correct { inputs_checked: 65536, exhaustive: true },
            Verdict::Error("signature mismatch: i8 vs i32".to_string()),
            Verdict::Incorrect(Counterexample {
                reason: "Value mismatch".to_string(),
                args: vec![
                    ("%x".to_string(), "i32 7".to_string()),
                    ("%y".to_string(), "i32 poison".to_string()),
                ],
                src_behaviour: "returns i8 3".to_string(),
                tgt_behaviour: "returns i8 5".to_string(),
            }),
            Verdict::Incorrect(Counterexample {
                reason: "Target is more poisonous than source".to_string(),
                args: Vec::new(),
                src_behaviour: "UB".to_string(),
                tgt_behaviour: "poison".to_string(),
            }),
        ];
        let tiers = [
            None,
            Some(VerdictTier::Proved),
            Some(VerdictTier::Tested),
            Some(VerdictTier::RefutedAbstract),
            Some(VerdictTier::RefutedConcrete),
        ];
        for verdict in verdicts {
            for tier in tiers {
                let blob = encode_verdict(&verdict, tier);
                assert_eq!(decode_verdict(&blob), Some((verdict.clone(), tier)), "blob: {blob:?}");
            }
        }
    }

    #[test]
    fn tierless_blobs_decode_with_no_tier() {
        // The exact byte format records carried before the tier field.
        let legacy = "correct\u{1f}256\u{1f}true";
        assert_eq!(
            decode_verdict(legacy),
            Some((Verdict::Correct { inputs_checked: 256, exhaustive: true }, None))
        );
    }

    #[test]
    fn malformed_blobs_are_misses() {
        for blob in [
            "",
            "corrupt",
            "correct\u{1f}x\u{1f}true",
            "correct\u{1f}5",
            "incorrect\u{1f}a",
            // An unknown tier name is malformed, never silently dropped.
            "correct\u{1f}5\u{1f}true\u{1f}tier=solved",
        ] {
            assert_eq!(decode_verdict(blob), None, "blob: {blob:?}");
        }
    }

    #[test]
    fn versioning_covers_revision_and_profile() {
        let v = store_version("Gemini2.0T");
        assert!(v.starts_with(&format!("r{PIPELINE_REVISION}/")));
        assert!(v.ends_with("Gemini2.0T"));
        assert_ne!(store_version("A"), store_version("B"));
        assert_eq!(case_key(2, 17, 0xabcd), "round2/case17/000000000000abcd");
    }
}
