//! Persistence glue between the pipeline and the durable
//! [`lpo_store::VerdictStore`]: version strings, verdict serialization, and
//! checkpoint keys.
//!
//! The store itself is content-agnostic (it moves opaque blobs); this module
//! owns the two blob formats —
//! [`lpo_tv::refine::Verdict`] records for the verified-once-ever
//! cache, and [`CaseReport`](crate::report::CaseReport) checkpoint records
//! (see [`CaseReport::checkpoint_blob`](crate::report::CaseReport::checkpoint_blob))
//! for `--resume` — plus the versioning that keeps stale records from ever
//! being replayed.
//!
//! # Versioning
//!
//! A stored verdict is replayed only under the exact
//! `(pipeline revision, model profile)` it was recorded under:
//!
//! * [`PIPELINE_REVISION`] must be bumped by any change that can alter a
//!   Stage-3 verdict or a case report (verifier semantics, input generation,
//!   canonicalization, prompt construction, ...). Old records then simply
//!   stop matching — they are never migrated, never trusted.
//! * the model profile is part of the key so one store file can serve
//!   many-model experiments without cross-talk. Verdicts are in principle
//!   model-independent (they relate a source/candidate digest pair), but
//!   sharing them across profiles buys little and versioning them per
//!   profile keeps the replay path trivially byte-identical per run key.
//!
//! # Determinism
//!
//! Every blob round-trips exactly: a replayed verdict reproduces the same
//! `Verdict` value (including the full counterexample text fed back to the
//! model), so a run with a warm store is byte-identical to a cold one —
//! `tests/determinism.rs` pins this.

use lpo_tv::refine::{Counterexample, Verdict};

/// The pipeline revision stamped into every store record. Bump on any change
/// that can alter a verdict or case report (see the module docs).
pub const PIPELINE_REVISION: u32 = 1;

/// The version string store records carry: pipeline revision + model profile.
pub fn store_version(model_profile: &str) -> String {
    format!("r{PIPELINE_REVISION}/{model_profile}")
}

/// The store key of one case inside one run: round, input position, and the
/// input's structural digest (so a changed input misses instead of replaying
/// a stale report).
pub fn case_key(round: u64, case_index: usize, digest: u64) -> String {
    format!("round{round}/case{case_index}/{digest:016x}")
}

/// Unit separator between verdict-blob fields. The joined fields are all
/// text this codebase renders itself (reasons, behaviour descriptions) and
/// never contain control characters; a blob that fails to parse is treated
/// as a miss, never trusted.
const SEP: char = '\x1f';

/// Serializes a [`Verdict`] into a store blob.
pub fn encode_verdict(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Correct { inputs_checked, exhaustive } => {
            format!("correct{SEP}{inputs_checked}{SEP}{exhaustive}")
        }
        Verdict::Incorrect(cex) => {
            let mut blob = format!(
                "incorrect{SEP}{}{SEP}{}{SEP}{}",
                cex.reason, cex.src_behaviour, cex.tgt_behaviour
            );
            for (name, value) in &cex.args {
                blob.push(SEP);
                blob.push_str(name);
                blob.push(SEP);
                blob.push_str(value);
            }
            blob
        }
        Verdict::Error(message) => format!("error{SEP}{message}"),
    }
}

/// Parses a blob produced by [`encode_verdict`]. `None` = malformed; the
/// caller recomputes.
pub fn decode_verdict(blob: &str) -> Option<Verdict> {
    let mut fields = blob.split(SEP);
    match fields.next()? {
        "correct" => {
            let inputs_checked = fields.next()?.parse::<usize>().ok()?;
            let exhaustive = fields.next()?.parse::<bool>().ok()?;
            fields
                .next()
                .is_none()
                .then_some(Verdict::Correct { inputs_checked, exhaustive })
        }
        "incorrect" => {
            let reason = fields.next()?.to_string();
            let src_behaviour = fields.next()?.to_string();
            let tgt_behaviour = fields.next()?.to_string();
            let rest: Vec<&str> = fields.collect();
            if !rest.len().is_multiple_of(2) {
                return None;
            }
            let args = rest
                .chunks(2)
                .map(|pair| (pair[0].to_string(), pair[1].to_string()))
                .collect();
            Some(Verdict::Incorrect(Counterexample {
                reason,
                args,
                src_behaviour,
                tgt_behaviour,
            }))
        }
        "error" => {
            let message = fields.next()?.to_string();
            fields.next().is_none().then_some(Verdict::Error(message))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_blobs_round_trip() {
        let verdicts = [
            Verdict::Correct { inputs_checked: 10752, exhaustive: false },
            Verdict::Correct { inputs_checked: 65536, exhaustive: true },
            Verdict::Error("signature mismatch: i8 vs i32".to_string()),
            Verdict::Incorrect(Counterexample {
                reason: "Value mismatch".to_string(),
                args: vec![
                    ("%x".to_string(), "i32 7".to_string()),
                    ("%y".to_string(), "i32 poison".to_string()),
                ],
                src_behaviour: "returns i8 3".to_string(),
                tgt_behaviour: "returns i8 5".to_string(),
            }),
            Verdict::Incorrect(Counterexample {
                reason: "Target is more poisonous than source".to_string(),
                args: Vec::new(),
                src_behaviour: "UB".to_string(),
                tgt_behaviour: "poison".to_string(),
            }),
        ];
        for verdict in verdicts {
            let blob = encode_verdict(&verdict);
            assert_eq!(decode_verdict(&blob).as_ref(), Some(&verdict), "blob: {blob:?}");
        }
    }

    #[test]
    fn malformed_blobs_are_misses() {
        for blob in ["", "corrupt", "correct\u{1f}x\u{1f}true", "correct\u{1f}5", "incorrect\u{1f}a"] {
            assert_eq!(decode_verdict(blob), None, "blob: {blob:?}");
        }
    }

    #[test]
    fn versioning_covers_revision_and_profile() {
        let v = store_version("Gemini2.0T");
        assert!(v.starts_with(&format!("r{PIPELINE_REVISION}/")));
        assert!(v.ends_with("Gemini2.0T"));
        assert_ne!(store_version("A"), store_version("B"));
        assert_eq!(case_key(2, 17, 0xabcd), "round2/case17/000000000000abcd");
    }
}
