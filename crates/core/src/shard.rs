//! The work-stealing shard scheduler: intra-case parallelism for the
//! execution engine.
//!
//! [`crate::exec`]'s original unit of scheduling was a *case* — one extracted
//! sequence, optimized and verified end-to-end on one worker. That leaves a
//! big machine idle whenever the batch is dominated by one huge case (a
//! 10k-input survivor sweep, a 1500-candidate enumeration). This module makes
//! the unit of scheduling a **shard**: a case decomposes into an ordered list
//! of independent work units (Stage-3 input-range [`SweepShard`]s, or
//! enumeration-frontier chunks), and idle workers steal them from a shared
//! deque instead of waiting on the per-case cursor.
//!
//! # Topology
//!
//! A [`ShardRuntime`] owns one shard deque and is shared by all workers of a
//! batch. Workers run whole cases off an atomic case cursor
//! ([`ShardRuntime::run_cases`]); when a case hits a decomposable step it
//! calls [`ShardRuntime::fork_join`], which enqueues the shards and then
//! *helps*: the owning worker executes queued shards (its own or any other
//! case's — shards are leaves and never block) until its group completes.
//! Workers whose case cursor is exhausted drain the deque as dedicated
//! helpers until the batch shuts down. Wall clock therefore tracks cores,
//! not the worst case.
//!
//! # Determinism and cancellation
//!
//! Scheduling never influences results: each group's slots are reassembled
//! **in shard order**, and the first-refuting-shard merge (see
//! [`lpo_tv::frozen`]) makes the merged outcome a pure function of the shard
//! list. Cancellation is monotone — task `i` may be skipped only when some
//! task `j < i` has already *cut* (reported a refutation), and every task
//! below the serial-first cut point executes and reports no finding — so
//! which shards were cancelled varies with timing, but never what the merge
//! returns. The [`ShardStats`] counters (`executed`, `stolen`,
//! `cancellations`) are observability, not results: `stolen` in particular
//! is scheduling-dependent by nature.

use lpo_tv::frozen::{SweepDriver, SweepShard, SweepSlot};
use lpo_tv::prelude::EvalArena;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::ThreadId;

/// A snapshot of shard-scheduler accounting.
///
/// `executed` counts shards that actually ran; `stolen` the subset that ran
/// on a worker other than the one that forked them; `cancellations` shards
/// skipped because an earlier sibling already refuted. `stolen` is
/// scheduling-dependent by nature; `executed`/`cancellations` can also vary
/// by a few shards with cut-propagation timing — report them, never compare
/// them across runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shards executed to completion (including the refuting shard).
    pub executed: usize,
    /// Executed shards that ran on a worker other than their forker.
    pub stolen: usize,
    /// Shards skipped because an earlier sibling shard cut the group.
    pub cancellations: usize,
}

impl ShardStats {
    /// The counters accumulated since `earlier` was taken.
    pub fn since(self, earlier: ShardStats) -> ShardStats {
        ShardStats {
            executed: self.executed - earlier.executed,
            stolen: self.stolen - earlier.stolen,
            cancellations: self.cancellations - earlier.cancellations,
        }
    }

    /// Folds another snapshot's counts into this one.
    pub fn absorb(&mut self, other: ShardStats) {
        self.executed += other.executed;
        self.stolen += other.stolen;
        self.cancellations += other.cancellations;
    }
}

/// Monotone shard counters, shared by every runtime a pipeline spawns so
/// batch drivers can snapshot/delta them like the TV counters.
#[derive(Debug, Default)]
pub struct ShardCounters {
    executed: AtomicUsize,
    stolen: AtomicUsize,
    cancellations: AtomicUsize,
}

impl ShardCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current totals.
    pub fn snapshot(&self) -> ShardStats {
        ShardStats {
            executed: self.executed.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            cancellations: self.cancellations.load(Ordering::Relaxed),
        }
    }
}

/// A queued shard task: type-erased so one deque serves every group (sweep
/// shards of different candidates, enumeration chunks, …). Tasks are
/// *leaves*: they never enqueue more work and never block, which is what
/// makes the owner's help-loop deadlock-free.
type Task = Box<dyn FnOnce(&mut EvalArena) + Send>;

struct SharedQueue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

/// Per-`fork_join` group state: the slot store, the countdown the owner
/// blocks on, and the monotone cut point for cancellation.
struct Group<R> {
    slots: Mutex<Vec<Option<ShardSlot<R>>>>,
    pending: Mutex<usize>,
    done: Condvar,
    /// Lowest task index that reported a cut; tasks above it are skipped.
    cut_at: AtomicUsize,
    owner: ThreadId,
}

/// One slot of a [`ShardRuntime::fork_join`] result, in task order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardSlot<R> {
    /// The task ran; its result.
    Executed(R),
    /// The task was skipped because an earlier sibling cut the group.
    Cancelled,
}

/// The shared work-stealing scheduler for one batch (see the module docs).
pub struct ShardRuntime {
    jobs: usize,
    queue: Mutex<SharedQueue>,
    work_ready: Condvar,
    counters: Arc<ShardCounters>,
}

impl std::fmt::Debug for ShardRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("jobs", &self.jobs)
            .field("stats", &self.counters.snapshot())
            .finish()
    }
}

impl ShardRuntime {
    /// Creates a runtime for `jobs` workers, accumulating into `counters`.
    pub fn new(jobs: usize, counters: Arc<ShardCounters>) -> Arc<Self> {
        Arc::new(Self {
            jobs: jobs.max(1),
            queue: Mutex::new(SharedQueue { tasks: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
            counters,
        })
    }

    /// The worker count this runtime schedules for.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The runtime's shard accounting so far.
    pub fn stats(&self) -> ShardStats {
        self.counters.snapshot()
    }

    /// Runs an ordered group of shard tasks and returns their slots in task
    /// order. Each task returns `(result, cut)`; once any task reports
    /// `cut`, every not-yet-started task with a *higher* index is skipped as
    /// [`ShardSlot::Cancelled`] (lower-indexed tasks always run — that is
    /// what keeps the first-executed-result merge deterministic).
    ///
    /// With one worker (or one task) the group runs inline, in order, on the
    /// caller's arena. Otherwise the tasks go onto the shared deque and the
    /// calling worker *helps*: it executes queued tasks — its own group's or
    /// any other's, shards are leaves — and blocks on the group countdown
    /// only when the deque is empty, i.e. when every remaining sibling is
    /// already executing on some other worker.
    pub fn fork_join<R, F>(&self, arena: &mut EvalArena, tasks: Vec<F>) -> Vec<ShardSlot<R>>
    where
        R: Send + 'static,
        F: FnOnce(&mut EvalArena) -> (R, bool) + Send + 'static,
    {
        let n = tasks.len();
        if self.jobs <= 1 || n <= 1 {
            let mut slots = Vec::with_capacity(n);
            let mut cut = false;
            for task in tasks {
                if cut {
                    self.counters.cancellations.fetch_add(1, Ordering::Relaxed);
                    slots.push(ShardSlot::Cancelled);
                    continue;
                }
                let (result, this_cut) = task(arena);
                self.counters.executed.fetch_add(1, Ordering::Relaxed);
                cut |= this_cut;
                slots.push(ShardSlot::Executed(result));
            }
            return slots;
        }

        let group = Arc::new(Group::<R> {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            pending: Mutex::new(n),
            done: Condvar::new(),
            cut_at: AtomicUsize::new(usize::MAX),
            owner: std::thread::current().id(),
        });

        {
            let mut queue = self.queue.lock().expect("shard queue poisoned");
            for (index, task) in tasks.into_iter().enumerate() {
                let group = group.clone();
                let counters = self.counters.clone();
                queue.tasks.push_back(Box::new(move |arena: &mut EvalArena| {
                    let slot = if group.cut_at.load(Ordering::SeqCst) < index {
                        counters.cancellations.fetch_add(1, Ordering::Relaxed);
                        ShardSlot::Cancelled
                    } else {
                        let (result, cut) = task(arena);
                        if cut {
                            group.cut_at.fetch_min(index, Ordering::SeqCst);
                        }
                        counters.executed.fetch_add(1, Ordering::Relaxed);
                        if std::thread::current().id() != group.owner {
                            counters.stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        ShardSlot::Executed(result)
                    };
                    group.slots.lock().expect("shard slots poisoned")[index] = Some(slot);
                    // Store the slot *before* the countdown: when the owner
                    // wakes at zero, every slot is filled.
                    let mut pending = group.pending.lock().expect("shard countdown poisoned");
                    *pending -= 1;
                    if *pending == 0 {
                        group.done.notify_all();
                    }
                }));
            }
        }
        self.work_ready.notify_all();

        // Help until this group completes. Invariant: if the deque is empty,
        // every remaining task of this group has been claimed by some worker
        // that will run it to completion (tasks never block), so waiting on
        // the countdown cannot deadlock.
        loop {
            {
                let pending = group.pending.lock().expect("shard countdown poisoned");
                if *pending == 0 {
                    break;
                }
            }
            let task = self.queue.lock().expect("shard queue poisoned").tasks.pop_front();
            match task {
                Some(task) => task(arena),
                None => {
                    let pending = group.pending.lock().expect("shard countdown poisoned");
                    if *pending == 0 {
                        break;
                    }
                    drop(group.done.wait(pending).expect("shard countdown poisoned"));
                }
            }
        }

        let slots = std::mem::take(&mut *group.slots.lock().expect("shard slots poisoned"));
        slots.into_iter().map(|slot| slot.expect("completed group filled every slot")).collect()
    }

    /// Runs `case(index, arena)` for `0..cases` across the runtime's workers
    /// and returns the results in case order.
    ///
    /// Workers pull whole cases off an atomic cursor; a worker whose cursor
    /// is exhausted (including every extra worker when `jobs > cases`)
    /// becomes a *helper* and drains shard tasks forked by the still-running
    /// cases until the batch completes. With one worker everything runs
    /// inline and in order.
    pub fn run_cases<R, F>(&self, cases: usize, case: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut EvalArena) -> R + Sync,
    {
        if cases == 0 {
            return Vec::new();
        }
        if self.jobs <= 1 {
            let mut arena = EvalArena::new();
            return (0..cases).map(|index| case(index, &mut arena)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let remaining = AtomicUsize::new(cases);
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..cases).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..self.jobs {
                scope.spawn(|| {
                    let mut arena = EvalArena::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= cases {
                            break;
                        }
                        let result = case(index, &mut arena);
                        slots.lock().expect("case store poisoned")[index] = Some(result);
                        if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                            // Last case done: release the helpers.
                            self.queue.lock().expect("shard queue poisoned").shutdown = true;
                            self.work_ready.notify_all();
                        }
                    }
                    // Helper mode: steal shards from cases still in flight.
                    loop {
                        let task = {
                            let mut queue = self.queue.lock().expect("shard queue poisoned");
                            loop {
                                if let Some(task) = queue.tasks.pop_front() {
                                    break Some(task);
                                }
                                if queue.shutdown {
                                    break None;
                                }
                                queue = self
                                    .work_ready
                                    .wait(queue)
                                    .expect("shard queue poisoned");
                            }
                        };
                        match task {
                            Some(task) => task(&mut arena),
                            None => break,
                        }
                    }
                });
            }
        });

        slots
            .into_inner()
            .expect("case store poisoned")
            .into_iter()
            .map(|slot| slot.expect("every case completed"))
            .collect()
    }
}

/// The work-stealing [`SweepDriver`]: Stage-3 sweep shards go through
/// [`ShardRuntime::fork_join`], a refuting shard cuts its later siblings,
/// and the slots come back in shard order for the deterministic merge in
/// `lpo-tv`.
#[derive(Clone)]
pub struct RuntimeSweepDriver {
    runtime: Arc<ShardRuntime>,
}

impl RuntimeSweepDriver {
    /// Wraps a runtime as a sweep driver.
    pub fn new(runtime: Arc<ShardRuntime>) -> Self {
        Self { runtime }
    }
}

impl SweepDriver for RuntimeSweepDriver {
    fn drive(&self, shards: Vec<SweepShard>, arena: &mut EvalArena) -> Vec<SweepSlot> {
        let tasks: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                move |arena: &mut EvalArena| {
                    let outcome = shard.run(arena);
                    let cut = outcome.refutes();
                    (outcome, cut)
                }
            })
            .collect();
        self.runtime
            .fork_join(arena, tasks)
            .into_iter()
            .map(|slot| match slot {
                ShardSlot::Executed(outcome) => SweepSlot::Executed(outcome),
                ShardSlot::Cancelled => SweepSlot::Cancelled,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(jobs: usize) -> Arc<ShardRuntime> {
        ShardRuntime::new(jobs, Arc::new(ShardCounters::new()))
    }

    #[test]
    fn fork_join_returns_slots_in_task_order() {
        for jobs in [1, 4] {
            let rt = runtime(jobs);
            let mut arena = EvalArena::new();
            let tasks: Vec<_> =
                (0..37).map(|i| move |_: &mut EvalArena| (i * 10, false)).collect();
            let slots = rt.fork_join(&mut arena, tasks);
            let values: Vec<usize> = slots
                .into_iter()
                .map(|slot| match slot {
                    ShardSlot::Executed(v) => v,
                    ShardSlot::Cancelled => panic!("nothing cut, nothing may be cancelled"),
                })
                .collect();
            assert_eq!(values, (0..37).map(|i| i * 10).collect::<Vec<_>>());
            assert_eq!(rt.stats().executed, 37, "jobs {jobs}");
            assert_eq!(rt.stats().cancellations, 0);
        }
    }

    #[test]
    fn a_cut_never_cancels_lower_indices() {
        // Task 5 cuts; tasks 0..5 must all execute regardless of scheduling.
        for jobs in [1, 4] {
            for _ in 0..8 {
                let rt = runtime(jobs);
                let mut arena = EvalArena::new();
                let tasks: Vec<_> =
                    (0..32).map(|i| move |_: &mut EvalArena| (i, i == 5)).collect();
                let slots = rt.fork_join(&mut arena, tasks);
                assert_eq!(slots.len(), 32);
                for (i, slot) in slots.iter().enumerate() {
                    if i <= 5 {
                        assert_eq!(slot, &ShardSlot::Executed(i), "jobs {jobs}");
                    }
                    // Above the cut, Executed(i) and Cancelled are both legal
                    // (timing-dependent), but a wrong value never is.
                    if let ShardSlot::Executed(v) = slot {
                        assert_eq!(*v, i);
                    }
                }
                // The first executed result at-or-above any cut is task 5's.
                let stats = rt.stats();
                assert_eq!(stats.executed + stats.cancellations, 32);
            }
        }
    }

    #[test]
    fn run_cases_returns_results_in_case_order() {
        for jobs in [1, 3, 8] {
            let rt = runtime(jobs);
            let out = rt.run_cases(23, |i, _| i * 3);
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
        assert!(runtime(4).run_cases(0, |i, _| i).is_empty());
    }

    #[test]
    fn helpers_steal_shards_from_a_single_case() {
        // One case, four workers: the three idle workers must be able to
        // execute the case's forked shards (this is the single-huge-case
        // scaling scenario bench-exec measures).
        let rt = runtime(4);
        let rt_ref = &rt;
        let out = rt.run_cases(1, move |_, arena| {
            let tasks: Vec<_> =
                (0..64).map(|i| move |_: &mut EvalArena| (i, false)).collect();
            let slots = rt_ref.fork_join(arena, tasks);
            slots.len()
        });
        assert_eq!(out, vec![64]);
        assert_eq!(rt.stats().executed, 64);
    }

    #[test]
    fn shard_stats_delta_and_absorb() {
        let counters = ShardCounters::new();
        counters.executed.fetch_add(10, Ordering::Relaxed);
        counters.stolen.fetch_add(3, Ordering::Relaxed);
        counters.cancellations.fetch_add(2, Ordering::Relaxed);
        let earlier = ShardStats { executed: 4, stolen: 1, cancellations: 0 };
        let delta = counters.snapshot().since(earlier);
        assert_eq!(delta, ShardStats { executed: 6, stolen: 2, cancellations: 2 });
        let mut total = earlier;
        total.absorb(delta);
        assert_eq!(total, counters.snapshot());
    }
}
