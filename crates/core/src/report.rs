//! Result types for pipeline runs.

use lpo_ir::function::Function;
use lpo_tv::refine::VerdictTier;
use std::time::Duration;

/// What happened to one extracted instruction sequence.
#[derive(Clone, Debug, PartialEq)]
pub enum CaseOutcome {
    /// A verified, interesting candidate was found (a potential missed optimization).
    Found {
        /// The candidate after `opt` canonicalization.
        candidate: Function,
    },
    /// The model's candidate was not interesting (usually: identical to the input).
    NotInteresting,
    /// Every attempt failed the correctness check.
    Rejected,
    /// Every attempt failed to parse / verify syntactically.
    SyntaxError,
    /// The case did not complete: its model session failed (typed
    /// [`SessionError`](lpo_llm::model::SessionError)) or the case panicked
    /// and was contained by the engine's per-case `catch_unwind`. The run
    /// carries on; the error text says why this case did not.
    Failed {
        /// Rendering of the session error or panic payload.
        error: String,
    },
}

impl CaseOutcome {
    /// Returns `true` when a potential missed optimization was recorded.
    pub fn is_found(&self) -> bool {
        matches!(self, CaseOutcome::Found { .. })
    }

    /// Returns `true` when the case failed (session error or contained
    /// panic) rather than completing with a verdict.
    pub fn is_failed(&self) -> bool {
        matches!(self, CaseOutcome::Failed { .. })
    }
}

/// The per-sequence report produced by [`Lpo::optimize_sequence`](crate::Lpo::optimize_sequence).
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// The outcome.
    pub outcome: CaseOutcome,
    /// How many LLM attempts were made (1..=ATTEMPT_LIMIT).
    pub attempts: usize,
    /// Real wall-clock time spent by this reproduction on the case.
    pub wall_time: Duration,
    /// Modelled end-to-end time (LLM inference latency + verification), the
    /// quantity Table 4 reports.
    pub modeled_time: Duration,
    /// Modelled API cost in USD for this case (zero for local models).
    pub cost_usd: f64,
    /// Which verification tier decided the case's final Stage-3 verdict
    /// (abstract proof, concrete sweep, abstract or concrete refutation).
    /// `None` when the case never reached Stage 3 (syntax errors,
    /// uninteresting candidates, session failures) or the report predates
    /// tier tracking. Informational — deliberately excluded from
    /// [`fingerprint`](Self::fingerprint), which pins behaviour, not
    /// machinery.
    pub tier: Option<VerdictTier>,
    /// How many of this case's Stage-3 verdicts replayed from the attached
    /// [`VerdictStore`](lpo_store::VerdictStore) instead of being computed
    /// (0 without a store, or when every lookup missed). Like `tier` this is
    /// machinery, not behaviour: excluded from
    /// [`fingerprint`](Self::fingerprint) and from
    /// [`checkpoint_blob`](Self::checkpoint_blob) (a replayed checkpoint
    /// reports 0 — it did no lookups).
    pub store_hits: usize,
}

impl CaseReport {
    /// A canonical text rendering of every *deterministic* field — everything
    /// except the real `wall_time`, which varies run to run.
    ///
    /// Two runs of the execution engine are considered bit-identical exactly
    /// when their report streams produce equal fingerprints; the determinism
    /// tests compare `--jobs 1` against `--jobs N` this way. Costs are
    /// rendered via [`f64::to_bits`] so the comparison is exact.
    pub fn fingerprint(&self) -> String {
        let outcome = match &self.outcome {
            CaseOutcome::Found { candidate } => {
                format!("found:{}", lpo_ir::printer::print_function(candidate))
            }
            CaseOutcome::NotInteresting => "not-interesting".to_string(),
            CaseOutcome::Rejected => "rejected".to_string(),
            CaseOutcome::SyntaxError => "syntax-error".to_string(),
            CaseOutcome::Failed { error } => format!("failed:{error}"),
        };
        format!(
            "outcome={outcome};attempts={};modeled_ns={};cost_bits={:#018x}",
            self.attempts,
            self.modeled_time.as_nanos(),
            self.cost_usd.to_bits()
        )
    }

    /// A `Failed` report for a case that did not complete.
    pub fn failed(error: String, attempts: usize, wall_time: Duration) -> Self {
        Self {
            outcome: CaseOutcome::Failed { error },
            attempts,
            wall_time,
            modeled_time: Duration::ZERO,
            cost_usd: 0.0,
            tier: None,
            store_hits: 0,
        }
    }

    /// Serializes every deterministic field into the blob format the
    /// checkpoint store persists.
    /// [`from_checkpoint_blob`](Self::from_checkpoint_blob) round-trips it;
    /// `wall_time` is not persisted (a replayed case did no work). The
    /// `tier=` line is emitted only when a tier was recorded, so reports
    /// without one serialize exactly as they did before tier tracking.
    pub fn checkpoint_blob(&self) -> String {
        let (kind, detail) = match &self.outcome {
            CaseOutcome::Found { candidate } => {
                ("found", lpo_ir::printer::print_function(candidate))
            }
            CaseOutcome::NotInteresting => ("not-interesting", String::new()),
            CaseOutcome::Rejected => ("rejected", String::new()),
            CaseOutcome::SyntaxError => ("syntax-error", String::new()),
            CaseOutcome::Failed { error } => ("failed", error.clone()),
        };
        let tier = match self.tier {
            Some(tier) => format!("tier={tier}\n"),
            None => String::new(),
        };
        format!(
            "attempts={}\nmodeled_ns={}\ncost_bits={:#018x}\n{tier}outcome={kind}\n{detail}",
            self.attempts,
            self.modeled_time.as_nanos(),
            self.cost_usd.to_bits(),
        )
    }

    /// Parses a [`checkpoint_blob`](Self::checkpoint_blob). Returns `None`
    /// for any malformed blob — callers treat that as a cache miss and
    /// recompute, never trusting a corrupt record. Blobs written before tier
    /// tracking (no `tier=` line) parse with `tier: None`.
    pub fn from_checkpoint_blob(blob: &str) -> Option<Self> {
        let (attempts_line, rest) = blob.split_once('\n')?;
        let (modeled_line, rest) = rest.split_once('\n')?;
        let (cost_line, rest) = rest.split_once('\n')?;
        let attempts = attempts_line.strip_prefix("attempts=")?.parse::<usize>().ok()?;
        let modeled_ns = modeled_line.strip_prefix("modeled_ns=")?.parse::<u64>().ok()?;
        let cost_hex = cost_line.strip_prefix("cost_bits=")?.strip_prefix("0x")?;
        let cost_usd = f64::from_bits(u64::from_str_radix(cost_hex, 16).ok()?);
        let (tier, rest) = match rest.strip_prefix("tier=") {
            Some(tiered) => {
                let (name, rest) = tiered.split_once('\n')?;
                (Some(VerdictTier::parse(name)?), rest)
            }
            None => (None, rest),
        };
        let (kind_line, detail) = rest.split_once('\n').unwrap_or((rest, ""));
        let kind = kind_line.strip_prefix("outcome=")?;
        let outcome = match kind {
            "found" => CaseOutcome::Found {
                candidate: lpo_ir::parser::parse_function(detail).ok()?,
            },
            "not-interesting" => CaseOutcome::NotInteresting,
            "rejected" => CaseOutcome::Rejected,
            "syntax-error" => CaseOutcome::SyntaxError,
            "failed" => CaseOutcome::Failed { error: detail.to_string() },
            _ => return None,
        };
        Some(Self {
            outcome,
            attempts,
            wall_time: Duration::ZERO,
            modeled_time: Duration::from_nanos(modeled_ns),
            cost_usd,
            tier,
            store_hits: 0,
        })
    }
}

/// Aggregate statistics over a run of many sequences.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Number of sequences processed.
    pub cases: usize,
    /// Number of potential missed optimizations found.
    pub found: usize,
    /// Number of uninteresting candidates.
    pub not_interesting: usize,
    /// Number rejected by the correctness check on every attempt.
    pub rejected: usize,
    /// Number that never parsed.
    pub syntax_errors: usize,
    /// Number that failed (session error or contained panic) instead of
    /// completing.
    pub failed: usize,
    /// Sum of modelled per-case times.
    pub total_modeled_time: Duration,
    /// Sum of modelled per-case costs.
    pub total_cost_usd: f64,
}

impl RunSummary {
    /// Folds a case report into the summary.
    pub fn add(&mut self, report: &CaseReport) {
        self.cases += 1;
        match report.outcome {
            CaseOutcome::Found { .. } => self.found += 1,
            CaseOutcome::NotInteresting => self.not_interesting += 1,
            CaseOutcome::Rejected => self.rejected += 1,
            CaseOutcome::SyntaxError => self.syntax_errors += 1,
            CaseOutcome::Failed { .. } => self.failed += 1,
        }
        self.total_modeled_time += report.modeled_time;
        self.total_cost_usd += report.cost_usd;
    }

    /// Builds a summary from a slice of reports.
    pub fn from_reports(reports: &[CaseReport]) -> Self {
        let mut s = Self::default();
        for r in reports {
            s.add(r);
        }
        s
    }

    /// Average modelled seconds per case.
    pub fn seconds_per_case(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.total_modeled_time.as_secs_f64() / self.cases as f64
        }
    }

    /// A canonical text rendering of the summary, exact on floats — the
    /// aggregate counterpart of [`CaseReport::fingerprint`].
    pub fn fingerprint(&self) -> String {
        format!(
            "cases={};found={};not_interesting={};rejected={};syntax_errors={};failed={};modeled_ns={};cost_bits={:#018x}",
            self.cases,
            self.found,
            self.not_interesting,
            self.rejected,
            self.syntax_errors,
            self.failed,
            self.total_modeled_time.as_nanos(),
            self.total_cost_usd.to_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(outcome: CaseOutcome, secs: f64) -> CaseReport {
        CaseReport {
            outcome,
            attempts: 1,
            wall_time: Duration::from_millis(1),
            modeled_time: Duration::from_secs_f64(secs),
            cost_usd: 0.001,
            tier: None,
            store_hits: 0,
        }
    }

    #[test]
    fn checkpoint_blobs_round_trip_the_tier() {
        for tier in [
            None,
            Some(VerdictTier::Proved),
            Some(VerdictTier::Tested),
            Some(VerdictTier::RefutedAbstract),
            Some(VerdictTier::RefutedConcrete),
        ] {
            let original = CaseReport { tier, ..report(CaseOutcome::Rejected, 2.0) };
            let parsed = CaseReport::from_checkpoint_blob(&original.checkpoint_blob())
                .expect("round trip");
            assert_eq!(parsed.tier, tier);
            assert_eq!(parsed.fingerprint(), original.fingerprint());
        }
        // Records written before tier tracking still parse.
        let legacy = "attempts=1\nmodeled_ns=5\ncost_bits=0x0000000000000000\noutcome=rejected\n";
        let parsed = CaseReport::from_checkpoint_blob(legacy).expect("legacy blob");
        assert_eq!(parsed.tier, None);
        assert_eq!(parsed.attempts, 1);
        // A tier line with an unknown name is malformed, not ignored.
        let bad = "attempts=1\nmodeled_ns=5\ncost_bits=0x0000000000000000\ntier=solved\noutcome=rejected\n";
        assert!(CaseReport::from_checkpoint_blob(bad).is_none());
    }

    #[test]
    fn summary_aggregation() {
        let reports = vec![
            report(CaseOutcome::NotInteresting, 5.0),
            report(CaseOutcome::Rejected, 10.0),
            report(CaseOutcome::SyntaxError, 3.0),
            report(
                CaseOutcome::Found {
                    candidate: lpo_ir::function::Function::new("c", lpo_ir::types::Type::Void),
                },
                6.0,
            ),
        ];
        let s = RunSummary::from_reports(&reports);
        assert_eq!(s.cases, 4);
        assert_eq!(s.found, 1);
        assert_eq!(s.not_interesting, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.syntax_errors, 1);
        assert!((s.seconds_per_case() - 6.0).abs() < 1e-9);
        assert!((s.total_cost_usd - 0.004).abs() < 1e-9);
        assert!(reports[3].outcome.is_found());
        assert!(!reports[0].outcome.is_found());
    }

    #[test]
    fn empty_summary() {
        let s = RunSummary::default();
        assert_eq!(s.seconds_per_case(), 0.0);
        assert_eq!(s.cases, 0);
    }
}
