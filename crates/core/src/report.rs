//! Result types for pipeline runs.

use lpo_ir::function::Function;
use std::time::Duration;

/// What happened to one extracted instruction sequence.
#[derive(Clone, Debug, PartialEq)]
pub enum CaseOutcome {
    /// A verified, interesting candidate was found (a potential missed optimization).
    Found {
        /// The candidate after `opt` canonicalization.
        candidate: Function,
    },
    /// The model's candidate was not interesting (usually: identical to the input).
    NotInteresting,
    /// Every attempt failed the correctness check.
    Rejected,
    /// Every attempt failed to parse / verify syntactically.
    SyntaxError,
}

impl CaseOutcome {
    /// Returns `true` when a potential missed optimization was recorded.
    pub fn is_found(&self) -> bool {
        matches!(self, CaseOutcome::Found { .. })
    }
}

/// The per-sequence report produced by [`Lpo::optimize_sequence`](crate::Lpo::optimize_sequence).
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// The outcome.
    pub outcome: CaseOutcome,
    /// How many LLM attempts were made (1..=ATTEMPT_LIMIT).
    pub attempts: usize,
    /// Real wall-clock time spent by this reproduction on the case.
    pub wall_time: Duration,
    /// Modelled end-to-end time (LLM inference latency + verification), the
    /// quantity Table 4 reports.
    pub modeled_time: Duration,
    /// Modelled API cost in USD for this case (zero for local models).
    pub cost_usd: f64,
}

impl CaseReport {
    /// A canonical text rendering of every *deterministic* field — everything
    /// except the real `wall_time`, which varies run to run.
    ///
    /// Two runs of the execution engine are considered bit-identical exactly
    /// when their report streams produce equal fingerprints; the determinism
    /// tests compare `--jobs 1` against `--jobs N` this way. Costs are
    /// rendered via [`f64::to_bits`] so the comparison is exact.
    pub fn fingerprint(&self) -> String {
        let outcome = match &self.outcome {
            CaseOutcome::Found { candidate } => {
                format!("found:{}", lpo_ir::printer::print_function(candidate))
            }
            CaseOutcome::NotInteresting => "not-interesting".to_string(),
            CaseOutcome::Rejected => "rejected".to_string(),
            CaseOutcome::SyntaxError => "syntax-error".to_string(),
        };
        format!(
            "outcome={outcome};attempts={};modeled_ns={};cost_bits={:#018x}",
            self.attempts,
            self.modeled_time.as_nanos(),
            self.cost_usd.to_bits()
        )
    }
}

/// Aggregate statistics over a run of many sequences.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Number of sequences processed.
    pub cases: usize,
    /// Number of potential missed optimizations found.
    pub found: usize,
    /// Number of uninteresting candidates.
    pub not_interesting: usize,
    /// Number rejected by the correctness check on every attempt.
    pub rejected: usize,
    /// Number that never parsed.
    pub syntax_errors: usize,
    /// Sum of modelled per-case times.
    pub total_modeled_time: Duration,
    /// Sum of modelled per-case costs.
    pub total_cost_usd: f64,
}

impl RunSummary {
    /// Folds a case report into the summary.
    pub fn add(&mut self, report: &CaseReport) {
        self.cases += 1;
        match report.outcome {
            CaseOutcome::Found { .. } => self.found += 1,
            CaseOutcome::NotInteresting => self.not_interesting += 1,
            CaseOutcome::Rejected => self.rejected += 1,
            CaseOutcome::SyntaxError => self.syntax_errors += 1,
        }
        self.total_modeled_time += report.modeled_time;
        self.total_cost_usd += report.cost_usd;
    }

    /// Builds a summary from a slice of reports.
    pub fn from_reports(reports: &[CaseReport]) -> Self {
        let mut s = Self::default();
        for r in reports {
            s.add(r);
        }
        s
    }

    /// Average modelled seconds per case.
    pub fn seconds_per_case(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.total_modeled_time.as_secs_f64() / self.cases as f64
        }
    }

    /// A canonical text rendering of the summary, exact on floats — the
    /// aggregate counterpart of [`CaseReport::fingerprint`].
    pub fn fingerprint(&self) -> String {
        format!(
            "cases={};found={};not_interesting={};rejected={};syntax_errors={};modeled_ns={};cost_bits={:#018x}",
            self.cases,
            self.found,
            self.not_interesting,
            self.rejected,
            self.syntax_errors,
            self.total_modeled_time.as_nanos(),
            self.total_cost_usd.to_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(outcome: CaseOutcome, secs: f64) -> CaseReport {
        CaseReport {
            outcome,
            attempts: 1,
            wall_time: Duration::from_millis(1),
            modeled_time: Duration::from_secs_f64(secs),
            cost_usd: 0.001,
        }
    }

    #[test]
    fn summary_aggregation() {
        let reports = vec![
            report(CaseOutcome::NotInteresting, 5.0),
            report(CaseOutcome::Rejected, 10.0),
            report(CaseOutcome::SyntaxError, 3.0),
            report(
                CaseOutcome::Found {
                    candidate: lpo_ir::function::Function::new("c", lpo_ir::types::Type::Void),
                },
                6.0,
            ),
        ];
        let s = RunSummary::from_reports(&reports);
        assert_eq!(s.cases, 4);
        assert_eq!(s.found, 1);
        assert_eq!(s.not_interesting, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.syntax_errors, 1);
        assert!((s.seconds_per_case() - 6.0).abs() < 1e-9);
        assert!((s.total_cost_usd - 0.004).abs() < 1e-9);
        assert!(reports[3].outcome.is_found());
        assert!(!reports[0].outcome.is_found());
    }

    #[test]
    fn empty_summary() {
        let s = RunSummary::default();
        assert_eq!(s.seconds_per_case(), 0.0);
        assert_eq!(s.cases, 0);
    }
}
