//! Algorithm 1: the closed-loop optimize–verify–feedback workflow.
//!
//! Stage 1 here is **text-free**: the LLM boundary is the only place text
//! crosses (the prompt out, the completion in). The source side of each case
//! is canonicalized once per case; each candidate is parsed once and then
//! verified/canonicalized as a [`Function`] value via
//! [`lpo_opt::pipeline::optimize_function`] — no per-candidate re-printing.

use crate::interestingness::SourceCost;
use crate::persist::{decode_verdict, encode_verdict, store_version};
use crate::report::{CaseOutcome, CaseReport, RunSummary};
use lpo_extract::{ExtractConfig, ExtractedSequence, Extractor};
use lpo_ir::function::Function;
use lpo_ir::hash::hash_function;
use lpo_ir::module::Module;
use lpo_ir::parser::parse_function;
use lpo_ir::printer::print_function;
use lpo_llm::model::{ModelFactory, ModelSession, Prompt};
use lpo_mca::Target;
use lpo_opt::pipeline::{optimize_function, OptLevel, Pipeline};
use crate::exec::{run_batch, run_batch_persisted, BatchResult, ExecConfig, ExecStats, Persist};
use crate::shard::ShardCounters;
use lpo_store::VerdictStore;
use lpo_tv::frozen::SweepDriver;
use lpo_tv::prelude::EvalArena;
use lpo_tv::refine::{CompileCache, SourceCache, TvConfig, Verdict};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the LPO pipeline.
#[derive(Clone, Debug)]
pub struct LpoConfig {
    /// Maximum LLM attempts per instruction sequence (the paper uses 2).
    pub attempt_limit: usize,
    /// Whether verifier output is fed back for another attempt. Disabling this
    /// yields the LPO⁻ ablation of the paper.
    pub feedback: bool,
    /// Optimization level used for the `opt` preprocessing step.
    pub opt_level: OptLevel,
    /// The target for the interestingness cost comparison.
    pub target: Target,
    /// Translation-validation configuration.
    pub tv: TvConfig,
    /// Fixed per-case verification overhead added to the modelled time
    /// (running `opt`, `llvm-mca` and Alive2 in the paper's setup).
    pub verification_overhead: Duration,
}

impl Default for LpoConfig {
    fn default() -> Self {
        Self {
            attempt_limit: 2,
            feedback: true,
            opt_level: OptLevel::O2,
            target: Target::Btver2Like,
            tv: TvConfig::default(),
            verification_overhead: Duration::from_millis(900),
        }
    }
}

impl LpoConfig {
    /// The LPO⁻ ablation: no feedback-driven retries.
    pub fn without_feedback() -> Self {
        Self { feedback: false, ..Self::default() }
    }
}

/// Shared Stage 3 accounting, aggregated across the worker pool.
#[derive(Debug, Default)]
struct TvCounters {
    candidates: AtomicUsize,
    probe_rejects: AtomicUsize,
    survivors: AtomicUsize,
    plane_sweeps: AtomicUsize,
    proved: AtomicUsize,
    absint_refuted: AtomicUsize,
}

/// Drop guard that folds one case's [`SourceCache`] accounting into the
/// pipeline-wide [`TvCounters`]. Running on `Drop` — not as straight-line
/// code after the attempt loop — is what keeps the counters complete when a
/// case unwinds mid-batch (a panicking model session contained by the
/// engine's per-case `catch_unwind`): the partially-checked candidates are
/// still counted instead of silently dropped.
struct AbsorbTvCounters<'a, 'b> {
    counters: &'a TvCounters,
    case: &'a SourceCache<'b>,
}

impl Drop for AbsorbTvCounters<'_, '_> {
    fn drop(&mut self) {
        self.counters.candidates.fetch_add(self.case.candidates_checked(), Ordering::Relaxed);
        self.counters.probe_rejects.fetch_add(self.case.probe_rejects(), Ordering::Relaxed);
        self.counters.survivors.fetch_add(self.case.survivors(), Ordering::Relaxed);
        self.counters.plane_sweeps.fetch_add(self.case.plane_sweeps(), Ordering::Relaxed);
        self.counters.proved.fetch_add(self.case.proved(), Ordering::Relaxed);
        self.counters.absint_refuted.fetch_add(self.case.absint_refuted(), Ordering::Relaxed);
    }
}

/// A snapshot of Stage 3 (translation validation) accounting: how the
/// staged checker's work split between the cheap probe and the compiled
/// survivor sweep, and what the shared compiled-function cache did.
///
/// `candidates`, `probe_rejects`, `survivors` and `plane_sweeps` are
/// deterministic for a given batch (they are per-case counts, independent
/// of scheduling);
/// `compile_cache_hits` / `compiles` depend on worker interleaving (two
/// workers can race to compile the same digest) and on what earlier batches
/// already cached, and the `shards_*` counters depend on how the
/// work-stealing scheduler interleaved (which worker ran a shard, how far
/// the deque drained before a cut landed) — report them, never compare
/// them across `--jobs` values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TvSnapshot {
    /// Candidates Stage 3 fully checked (signature errors excluded).
    pub candidates: usize,
    /// Candidates accepted on an abstract proof certificate (Stage 3a₀):
    /// no probe, no compile, no sweep.
    pub proved: usize,
    /// Candidates rejected on an abstract refutation certificate. Disjoint
    /// from `probe_rejects` even when the verdict-rendering path let the
    /// probe materialize the concrete counterexample.
    pub absint_refuted: usize,
    /// Candidates refuted inside the probe window — no compile paid.
    pub probe_rejects: usize,
    /// Candidates that survived the probe into compile + batched sweep.
    pub survivors: usize,
    /// Survivors whose post-probe sweep ran on the type-specialized plane
    /// evaluator (straight-line scalar-integer candidates).
    pub plane_sweeps: usize,
    /// Compiled-function cache hits.
    pub compile_cache_hits: usize,
    /// Compiles performed (cache misses).
    pub compiles: usize,
    /// Sweep/enumeration shards executed by the work-stealing scheduler.
    pub shards_executed: usize,
    /// Executed shards that ran on a worker other than their forker.
    pub shards_stolen: usize,
    /// Shards skipped because an earlier sibling shard already refuted.
    pub shard_cancellations: usize,
}

impl TvSnapshot {
    /// The counters accumulated since `earlier` was taken.
    pub fn since(self, earlier: TvSnapshot) -> TvSnapshot {
        TvSnapshot {
            candidates: self.candidates - earlier.candidates,
            proved: self.proved - earlier.proved,
            absint_refuted: self.absint_refuted - earlier.absint_refuted,
            probe_rejects: self.probe_rejects - earlier.probe_rejects,
            survivors: self.survivors - earlier.survivors,
            plane_sweeps: self.plane_sweeps - earlier.plane_sweeps,
            compile_cache_hits: self.compile_cache_hits - earlier.compile_cache_hits,
            compiles: self.compiles - earlier.compiles,
            shards_executed: self.shards_executed - earlier.shards_executed,
            shards_stolen: self.shards_stolen - earlier.shards_stolen,
            shard_cancellations: self.shard_cancellations - earlier.shard_cancellations,
        }
    }

    /// Folds another snapshot's counts into this one (drivers aggregating
    /// several batches).
    pub fn absorb(&mut self, other: TvSnapshot) {
        self.candidates += other.candidates;
        self.proved += other.proved;
        self.absint_refuted += other.absint_refuted;
        self.probe_rejects += other.probe_rejects;
        self.survivors += other.survivors;
        self.plane_sweeps += other.plane_sweeps;
        self.compile_cache_hits += other.compile_cache_hits;
        self.compiles += other.compiles;
        self.shards_executed += other.shards_executed;
        self.shards_stolen += other.shards_stolen;
        self.shard_cancellations += other.shard_cancellations;
    }
}

/// The LPO pipeline.
///
/// Cloning an `Lpo` shares its Stage 3 compiled-function cache and counters
/// (they live behind `Arc`s), so a cloned pipeline keeps benefitting from
/// candidates the original already compiled.
#[derive(Clone, Debug)]
pub struct Lpo {
    config: LpoConfig,
    opt: Pipeline,
    tv_cache: Arc<CompileCache>,
    tv_counters: Arc<TvCounters>,
    shard_counters: Arc<ShardCounters>,
    /// Durable verdict store, when attached: Stage-3 verdicts are replayed
    /// from it (keyed by source/candidate digests, versioned by pipeline
    /// revision + model profile) and fresh verdicts are recorded into it.
    store: Option<Arc<VerdictStore>>,
}

impl Default for Lpo {
    fn default() -> Self {
        Self::new(LpoConfig::default())
    }
}

impl Lpo {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: LpoConfig) -> Self {
        let opt = Pipeline::new(config.opt_level);
        Self {
            config,
            opt,
            tv_cache: Arc::new(CompileCache::new()),
            tv_counters: Arc::new(TvCounters::default()),
            shard_counters: Arc::new(ShardCounters::new()),
            store: None,
        }
    }

    /// Attaches a durable [`VerdictStore`]: every Stage-3 verdict this
    /// pipeline computes is recorded, and a candidate whose verdict is
    /// already stored (same digests, same pipeline revision, same model
    /// profile) replays it without re-sweeping. Replayed verdicts are
    /// byte-identical to fresh ones — including counterexample feedback —
    /// so results do not depend on the store being warm, cold, or absent
    /// (`tests/determinism.rs` pins this).
    pub fn with_verdict_store(mut self, store: Arc<VerdictStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached verdict store, if any.
    pub fn verdict_store(&self) -> Option<&Arc<VerdictStore>> {
        self.store.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> &LpoConfig {
        &self.config
    }

    /// The shared Stage 3 compiled-function cache (one per pipeline,
    /// shared by every worker and every batch this pipeline runs).
    pub fn compile_cache(&self) -> &CompileCache {
        &self.tv_cache
    }

    /// The Stage 3 accounting accumulated by this pipeline so far. Batch
    /// drivers take a snapshot before and after a run and report the
    /// [`TvSnapshot::since`] delta.
    pub fn tv_snapshot(&self) -> TvSnapshot {
        let shards = self.shard_counters.snapshot();
        TvSnapshot {
            candidates: self.tv_counters.candidates.load(Ordering::Relaxed),
            proved: self.tv_counters.proved.load(Ordering::Relaxed),
            absint_refuted: self.tv_counters.absint_refuted.load(Ordering::Relaxed),
            probe_rejects: self.tv_counters.probe_rejects.load(Ordering::Relaxed),
            survivors: self.tv_counters.survivors.load(Ordering::Relaxed),
            plane_sweeps: self.tv_counters.plane_sweeps.load(Ordering::Relaxed),
            compile_cache_hits: self.tv_cache.hits(),
            compiles: self.tv_cache.misses(),
            shards_executed: shards.executed,
            shards_stolen: shards.stolen,
            shard_cancellations: shards.cancellations,
        }
    }

    /// The pipeline-wide shard-scheduler counters. The execution engine's
    /// [`crate::shard::ShardRuntime`]s accumulate into these so that
    /// [`tv_snapshot`](Self::tv_snapshot) deltas cover shard accounting too.
    pub fn shard_counters(&self) -> &Arc<ShardCounters> {
        &self.shard_counters
    }

    /// Runs Algorithm 1's inner loop on one wrapped instruction sequence,
    /// driving one per-case model session.
    ///
    /// Convenience wrapper over [`optimize_sequence_in`](Self::optimize_sequence_in)
    /// with a throwaway evaluation arena; the execution engine gives each
    /// worker thread one long-lived arena instead.
    pub fn optimize_sequence(&self, model: &mut dyn ModelSession, source: &Function) -> CaseReport {
        self.optimize_sequence_in(model, source, &mut EvalArena::new())
    }

    /// [`optimize_sequence`](Self::optimize_sequence) with an explicit
    /// evaluation arena (the reusable register file every concrete
    /// evaluation of this case runs on).
    ///
    /// The translation-validation stage keeps one [`SourceCache`] for the
    /// whole case: test inputs are generated once per signature and the
    /// source function is evaluated once per input, no matter how many
    /// candidate rewrites the feedback loop verifies.
    pub fn optimize_sequence_in(
        &self,
        model: &mut dyn ModelSession,
        source: &Function,
        arena: &mut EvalArena,
    ) -> CaseReport {
        self.optimize_sequence_impl(model, source, arena, None)
    }

    /// [`optimize_sequence_in`](Self::optimize_sequence_in) with the Stage-3
    /// survivor sweep decomposed into shards of `shard_size` inputs driven
    /// through `driver` (the execution engine passes a
    /// [`crate::shard::RuntimeSweepDriver`] so idle workers steal them).
    ///
    /// Verdicts, counterexamples and the per-case TV counters other than
    /// `plane_sweeps` are identical to the unsharded path for every driver
    /// and shard size; under sharding `plane_sweeps` deterministically
    /// counts survivors whose *first* post-probe shard used the plane
    /// evaluator.
    pub fn optimize_sequence_sharded(
        &self,
        model: &mut dyn ModelSession,
        source: &Function,
        arena: &mut EvalArena,
        driver: &dyn SweepDriver,
        shard_size: usize,
    ) -> CaseReport {
        self.optimize_sequence_impl(model, source, arena, Some((driver, shard_size)))
    }

    fn optimize_sequence_impl(
        &self,
        model: &mut dyn ModelSession,
        source: &Function,
        arena: &mut EvalArena,
        sharding: Option<(&dyn SweepDriver, usize)>,
    ) -> CaseReport {
        let start = Instant::now();
        // Stage 1, source side, **once per case**: canonicalize the sequence
        // the way `opt` would before anything downstream sees it. Extracted
        // corpus sequences are pre-filtered to canonical fixpoints, so this
        // is a cheap confirmation pass there; it guarantees the prompt, the
        // interestingness baseline and the TV source cache all agree on one
        // canonical source, no matter how many candidates the loop verifies.
        let mut canonical = source.clone();
        self.opt.run(&mut canonical);
        let source = &canonical;
        let source_cost = SourceCost::new(source, self.config.target);
        let source_text = print_function(source);
        let mut prompt = Prompt::initial(source_text);
        let mut modeled = Duration::ZERO;
        let mut cost = 0.0;
        let mut attempts = 0;
        let mut last_outcome = CaseOutcome::NotInteresting;
        let mut last_tier = None;
        let mut store_hits = 0;
        // Lazy: cases that never reach step ⑤ (syntax errors, uninteresting
        // candidates) pay nothing for input generation or source evaluation.
        // Probe survivors compile through the pipeline-wide cache, so a
        // candidate structurally identical to one verified anywhere else on
        // this pipeline (any case, any worker, any batch) compiles once.
        let tv_case =
            SourceCache::new(source, self.config.tv.clone()).with_compile_cache(&self.tv_cache);
        // Absorb the case's TV accounting into the pipeline-wide counters on
        // every exit path — normal returns, early `break`s, and unwinds from
        // a panicking model session (the engine's per-case `catch_unwind`
        // catches those *outside* this frame, so only a drop guard runs).
        let _absorb = AbsorbTvCounters { counters: &self.tv_counters, case: &tv_case };
        // With a store attached: verdicts replay by (version, source digest,
        // candidate digest). The version pins pipeline revision + model
        // profile, so records from older code or other models never match.
        let store = self
            .store
            .as_deref()
            .map(|store| (store, store_version(model.name()), hash_function(source).0));

        while attempts < self.config.attempt_limit {
            attempts += 1;
            // The report's tier describes the *final* outcome: reset it so a
            // late syntax error doesn't inherit an earlier attempt's tier.
            last_tier = None;
            let completion = match model.try_propose(&prompt) {
                Ok(completion) => completion,
                Err(fault) => {
                    // The session's failure model gave up on this case (its
                    // retry budget is inside `try_propose`). Fail the case,
                    // keep the run alive.
                    last_outcome = CaseOutcome::Failed { error: fault.to_string() };
                    break;
                }
            };
            modeled += completion.latency + self.config.verification_overhead;
            cost += completion.cost_usd;

            // Step ③: the `opt` preprocessing — parse once at the LLM text
            // boundary, then verify + canonicalize the `Function` value
            // directly (no re-print round-trip).
            let candidate = match parse_function(&completion.text)
                .map_err(|e| e.to_string())
                .and_then(|mut func| optimize_function(&mut func, &self.opt).map(|_| func))
            {
                Err(error_message) => {
                    last_outcome = CaseOutcome::SyntaxError;
                    if self.config.feedback && attempts < self.config.attempt_limit {
                        prompt = prompt.with_feedback(error_message);
                        continue;
                    }
                    break;
                }
                Ok(func) => func,
            };

            // Step ④: interestingness against the cached source estimate. An
            // uninteresting candidate abandons the sequence (no retry), as in
            // Algorithm 1 line 16.
            if !source_cost.is_interesting(&candidate) {
                last_outcome = CaseOutcome::NotInteresting;
                break;
            }

            // Step ⑤: correctness via translation validation — replayed from
            // the verdict store when it already holds this (source, candidate)
            // pair under the current version, recorded into it when not.
            // Stored verdicts round-trip exactly (counterexamples included),
            // so the feedback loop below cannot tell a replay from a sweep.
            let verify = |arena: &mut EvalArena| match sharding {
                Some((driver, shard_size)) => {
                    tv_case.verify_with_driver(&candidate, arena, driver, shard_size)
                }
                None => tv_case.verify_with(&candidate, arena),
            };
            let verdict = match &store {
                Some((store, version, src_digest)) => {
                    let tgt_digest = hash_function(&candidate).0;
                    match store
                        .verdict(version, *src_digest, tgt_digest)
                        .and_then(|blob| decode_verdict(&blob))
                    {
                        Some((stored, tier)) => {
                            store_hits += 1;
                            last_tier = tier;
                            stored
                        }
                        None => {
                            let fresh = verify(arena);
                            last_tier = tv_case.last_tier();
                            store.record_verdict(
                                version,
                                *src_digest,
                                tgt_digest,
                                &encode_verdict(&fresh, last_tier),
                            );
                            fresh
                        }
                    }
                }
                None => {
                    let fresh = verify(arena);
                    last_tier = tv_case.last_tier();
                    fresh
                }
            };
            match verdict {
                Verdict::Correct { .. } => {
                    last_outcome = CaseOutcome::Found { candidate };
                    break;
                }
                Verdict::Incorrect(cex) => {
                    last_outcome = CaseOutcome::Rejected;
                    if self.config.feedback && attempts < self.config.attempt_limit {
                        prompt = prompt.with_feedback(cex.to_string());
                        continue;
                    }
                    break;
                }
                Verdict::Error(message) => {
                    last_outcome = CaseOutcome::Rejected;
                    if self.config.feedback && attempts < self.config.attempt_limit {
                        prompt = prompt.with_feedback(message);
                        continue;
                    }
                    break;
                }
            }
        }

        CaseReport {
            outcome: last_outcome,
            attempts,
            wall_time: start.elapsed(),
            modeled_time: modeled,
            cost_usd: cost,
            tier: last_tier,
            store_hits,
        }
    }

    /// Runs the pipeline over a batch of already-extracted sequences on the
    /// parallel execution engine (see [`crate::exec`]).
    ///
    /// Each unique sequence gets its own session from `factory`, seeded by
    /// `(round, index of its first occurrence)`; structural duplicates are
    /// replayed from the dedup cache. Results come back in input order and
    /// are bit-identical for every worker count.
    pub fn run_sequences(
        &self,
        factory: &dyn ModelFactory,
        round: u64,
        sequences: &[Function],
        exec: &ExecConfig,
    ) -> BatchResult {
        run_batch(self, factory, round, sequences, exec)
    }

    /// [`run_sequences`](Self::run_sequences) with checkpoint/resume: every
    /// completed case is recorded into `persist.store` under
    /// `(run key, round, case index, input digest)`, and with
    /// [`Persist::resume`] set, already-recorded cases replay their
    /// checkpointed report instead of recomputing (see [`crate::exec`]).
    pub fn run_sequences_persisted(
        &self,
        factory: &dyn ModelFactory,
        round: u64,
        sequences: &[Function],
        exec: &ExecConfig,
        persist: Option<&Persist<'_>>,
    ) -> BatchResult {
        run_batch_persisted(self, factory, round, sequences, exec, persist)
    }

    /// Serial-compatible wrapper: runs a batch through one shared session,
    /// exactly like the engine with `--jobs 1` but without spawning sessions
    /// (useful for driving a hand-constructed [`ModelSession`]).
    pub fn run_sequences_serial(
        &self,
        session: &mut dyn ModelSession,
        sequences: &[Function],
    ) -> (Vec<CaseReport>, RunSummary) {
        let reports: Vec<CaseReport> =
            sequences.iter().map(|f| self.optimize_sequence(session, f)).collect();
        let summary = RunSummary::from_reports(&reports);
        (reports, summary)
    }

    /// The full workflow of Figure 2: extract sequences from a corpus of
    /// modules, then fan the optimize–verify loop over the unique sequences
    /// on the execution engine.
    pub fn run_corpus<'m>(
        &self,
        factory: &dyn ModelFactory,
        round: u64,
        modules: impl IntoIterator<Item = &'m Module>,
        extract: ExtractConfig,
        exec: &ExecConfig,
    ) -> (Vec<(ExtractedSequence, CaseReport)>, RunSummary, ExecStats) {
        let mut extractor = Extractor::new(extract);
        let sequences = extractor.extract_corpus(modules);
        let functions: Vec<Function> = sequences.iter().map(|s| s.function.clone()).collect();
        let batch = run_batch(self, factory, round, &functions, exec);
        let out: Vec<(ExtractedSequence, CaseReport)> =
            sequences.into_iter().zip(batch.reports).collect();
        (out, batch.summary, batch.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::{parse_function, parse_module};
    use lpo_llm::prelude::{gemini2_0t, gemma3, SimulatedModel, SimulatedModelFactory};

    const CLAMP: &str = "define i8 @src(i32 %0) {\n\
        %2 = icmp slt i32 %0, 0\n\
        %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
        %4 = trunc nuw i32 %3 to i8\n\
        %5 = select i1 %2, i8 0, i8 %4\n\
        ret i8 %5\n}";

    fn count_found(config: LpoConfig, profile: lpo_llm::profiles::ModelProfile, rounds: u64) -> usize {
        let lpo = Lpo::new(config);
        let src = parse_function(CLAMP).unwrap();
        let mut found = 0;
        for round in 0..rounds {
            let mut model = SimulatedModel::for_case(profile.clone(), 99, round, 0);
            if lpo.optimize_sequence(&mut model, &src).outcome.is_found() {
                found += 1;
            }
        }
        found
    }

    #[test]
    fn finds_the_figure_1_missed_optimization_with_a_strong_model() {
        let found = count_found(LpoConfig::default(), gemini2_0t(), 10);
        assert!(found >= 6, "found only {found}/10");
    }

    #[test]
    fn weak_models_find_less_and_feedback_helps() {
        let with_feedback = count_found(LpoConfig::default(), gemini2_0t(), 24);
        let without_feedback = count_found(LpoConfig::without_feedback(), gemini2_0t(), 24);
        assert!(
            with_feedback >= without_feedback,
            "LPO ({with_feedback}) must not be worse than LPO- ({without_feedback})"
        );
        let weak = count_found(LpoConfig::default(), gemma3(), 10);
        let strong = count_found(LpoConfig::default(), gemini2_0t(), 10);
        assert!(weak <= strong);
    }

    #[test]
    fn found_candidates_are_verified_and_cheaper() {
        let lpo = Lpo::new(LpoConfig::default());
        let src = parse_function(CLAMP).unwrap();
        for round in 0..20 {
            let mut model = SimulatedModel::for_case(gemini2_0t(), 7, round, 0);
            let report = lpo.optimize_sequence(&mut model, &src);
            if let CaseOutcome::Found { candidate } = report.outcome {
                assert!(candidate.instruction_count() < src.instruction_count());
                assert!(lpo_tv::refine::verify_refinement(&src, &candidate).is_correct());
                assert!(report.modeled_time > Duration::from_millis(500));
                return;
            }
        }
        panic!("the strong model never produced a verified candidate in 20 rounds");
    }

    #[test]
    fn uninteresting_sequences_are_abandoned_quickly() {
        let lpo = Lpo::new(LpoConfig::default());
        let src = parse_function(
            "define i32 @f(i32 %x, i32 %y) {\n %a = mul i32 %x, %y\n %b = add i32 %a, %y\n ret i32 %b\n}",
        )
        .unwrap();
        let mut model = SimulatedModel::new(gemini2_0t(), 3);
        let report = lpo.optimize_sequence(&mut model, &src);
        assert_eq!(report.outcome, CaseOutcome::NotInteresting);
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn full_corpus_workflow_runs_end_to_end() {
        let module = parse_module(
            "define i8 @hot(i32 %x) {\n\
             %c = icmp slt i32 %x, 0\n\
             %m = call i32 @llvm.umin.i32(i32 %x, i32 255)\n\
             %t = trunc nuw i32 %m to i8\n\
             %s = select i1 %c, i8 0, i8 %t\n\
             ret i8 %s\n}\n\
             define i32 @cold(i32 %x, i32 %y) {\n\
             %a = mul i32 %x, %y\n\
             %b = add i32 %a, %y\n\
             ret i32 %b\n}",
        )
        .unwrap();
        let lpo = Lpo::new(LpoConfig::default());
        let factory = SimulatedModelFactory::new(gemini2_0t(), 5);
        let (results, summary, stats) =
            lpo.run_corpus(&factory, 0, [&module], ExtractConfig::default(), &ExecConfig::default());
        assert_eq!(results.len(), summary.cases);
        assert_eq!(stats.cases, summary.cases);
        assert!(summary.cases >= 2);
        assert!(summary.total_modeled_time > Duration::ZERO);
    }

    #[test]
    fn config_accessors() {
        let lpo = Lpo::default();
        assert_eq!(lpo.config().attempt_limit, 2);
        assert!(lpo.config().feedback);
        assert!(!LpoConfig::without_feedback().feedback);
    }
}
