//! The parallel execution engine behind every corpus-scale run.
//!
//! The paper's throughput bottleneck (Section 6) is that each extracted
//! sequence pays an LLM round-trip plus `opt`/`llvm-mca`/Alive2 verification.
//! These cases are embarrassingly parallel, so this module provides:
//!
//! * a [`std::thread::scope`]-based worker pool ([`parallel_map_ordered`])
//!   that fans work items out over a chunked queue and reassembles results in
//!   input order — no extra dependencies, no unsafe code;
//! * shard-granular scheduling ([`ExecConfig::shard_inputs`], on by
//!   default): each case decomposes into stealable Stage-3 sweep shards of
//!   [`ExecConfig::shard_size`] inputs on the work-stealing
//!   [`crate::shard::ShardRuntime`], so a batch dominated by one huge case
//!   still scales with `--jobs` (idle workers steal that case's shards);
//! * a structural-hash dedup cache ([`DedupPlan`], keyed on
//!   [`lpo_ir::hash::hash_function`]) so a sequence that appears several times
//!   in a corpus is prompted and verified exactly once, with every duplicate
//!   replayed from the cached [`CaseReport`];
//! * the [`ExecConfig`]/[`ExecStats`] types the benchmark drivers use to
//!   surface `--jobs`, cache-hit and wall-clock numbers.
//!
//! # Determinism contract
//!
//! Runs are bit-identical for every `--jobs` value because nothing observable
//! depends on scheduling:
//!
//! 1. model sessions are spawned per case from a `Send + Sync`
//!    [`ModelFactory`], seeded only by `(round, case_index)`;
//! 2. each unique sequence is processed under the case index of its *first*
//!    occurrence in input order (the dedup plan fixes this before any worker
//!    starts), and duplicates replay that exact report;
//! 3. results are reassembled in input order before any aggregation, so
//!    even floating-point summaries add up in a fixed order.
//!
//! Only the real `wall_time` fields differ between runs; use
//! [`CaseReport::fingerprint`](crate::report::CaseReport::fingerprint) for
//! comparisons.

use crate::persist::case_key;
use crate::pipeline::{Lpo, TvSnapshot};
use crate::report::{CaseReport, RunSummary};
use crate::shard::{RuntimeSweepDriver, ShardRuntime};
use lpo_ir::function::Function;
use lpo_ir::hash::{hash_function, Digest};
use lpo_llm::model::ModelFactory;
use lpo_store::{StoreStats, VerdictStore};
use lpo_tv::prelude::{input_count, EvalArena};
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The default Stage-3 sweep shard size, in inputs. Matches the plane
/// evaluator's lane width so a shard is never smaller than one plane chunk.
pub const DEFAULT_SHARD_SIZE: usize = 256;

/// How a batch run is executed.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Worker threads. `0` means "use [`std::thread::available_parallelism`]".
    pub jobs: usize,
    /// Whether structurally identical sequences are collapsed into one
    /// prompted/verified case plus cache replays. On by default.
    pub dedup: bool,
    /// Whether cases decompose into stealable input-sweep shards (the
    /// work-stealing scheduler of [`crate::shard`]). On by default; off
    /// reverts to the case-granular chunked pool.
    pub shard_inputs: bool,
    /// Inputs per Stage-3 sweep shard ([`usize::MAX`] = one shard per
    /// survivor, i.e. sharding without splitting). Clamped to at least 1.
    pub shard_size: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self { jobs: 0, dedup: true, shard_inputs: true, shard_size: DEFAULT_SHARD_SIZE }
    }
}

impl ExecConfig {
    /// One worker: the serial-compatible configuration.
    pub fn serial() -> Self {
        Self { jobs: 1, ..Self::default() }
    }

    /// A configuration with an explicit worker count (`0` = auto).
    pub fn with_jobs(jobs: usize) -> Self {
        Self { jobs, ..Self::default() }
    }

    /// Resolves `jobs` to a concrete worker count for `work` items.
    ///
    /// The engine counts *work units*, not cases: with sharding on, a case
    /// contributes its estimated shard count ([`shard_work_units`]), so a
    /// batch of one huge case still resolves to a full pool whose extra
    /// workers steal that case's shards.
    pub fn effective_jobs(&self, work: usize) -> usize {
        let requested = if self.jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.jobs
        };
        requested.min(work).max(1)
    }
}

/// Estimates the schedulable work units of a batch: the summed shard counts
/// of the computed cases.
///
/// Each case counts `1` (its prompt/parse/probe spine) plus one unit per
/// `shard_size` post-probe sweep inputs — the shards an eventual survivor
/// sweep of that case would fork. It is an upper-bound *estimate* (cases
/// with no survivor never fork), used only to resolve the worker count;
/// results never depend on it.
pub fn shard_work_units(lpo: &Lpo, sequences: &[Function], unique: &[usize], shard_size: usize) -> usize {
    let tv = &lpo.config().tv;
    let shard_size = shard_size.max(1);
    unique
        .iter()
        .map(|&index| {
            let total = input_count(&sequences[index], &tv.inputs);
            let swept = total - tv.probe_inputs.min(total);
            1 + swept.div_ceil(shard_size)
        })
        .sum()
}

/// What a batch run actually did, for `--jobs`/cache reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Total cases in the input.
    pub cases: usize,
    /// Cases actually prompted/verified (one per unique structural hash).
    pub unique_cases: usize,
    /// Cases replayed from the dedup cache (`cases - unique_cases`).
    pub cache_hits: usize,
    /// Cases (after dedup replay) that ended `Failed`: their model session
    /// gave up with a typed error, or they panicked and the per-case
    /// `catch_unwind` contained it. The failure texts live in the reports.
    pub failed_cases: usize,
    /// Unique cases replayed from a checkpoint store instead of computed
    /// (`--resume`).
    pub resumed_cases: usize,
    /// Durable verdict/checkpoint store traffic during this batch (all zero
    /// when no store is attached).
    pub store: StoreStats,
    /// Real wall-clock time of the batch.
    pub wall_time: Duration,
    /// Stage 3 (translation validation) accounting for this batch: probe
    /// rejects vs compiled survivor sweeps, plus compiled-function cache
    /// traffic. The probe/survivor split is deterministic; the cache traffic
    /// is scheduling-dependent (see [`TvSnapshot`]).
    pub tv: TvSnapshot,
}

impl ExecStats {
    /// Cases per wall-clock second (0 when the batch was instantaneous).
    pub fn cases_per_second(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.cases as f64 / secs
        } else {
            0.0
        }
    }
}

/// The dedup cache's plan for a batch: which input index is the canonical
/// computation for each structural digest, decided *before* execution so the
/// result does not depend on worker scheduling.
#[derive(Clone, Debug)]
pub struct DedupPlan {
    /// For every input index, the input index whose report it uses.
    representative: Vec<usize>,
    /// The indices that are computed (first occurrence of each digest),
    /// in input order.
    unique: Vec<usize>,
}

impl DedupPlan {
    /// Plans a batch. With `dedup` off, every case is its own representative.
    pub fn new(sequences: &[Function], dedup: bool) -> Self {
        let mut representative = Vec::with_capacity(sequences.len());
        let mut unique = Vec::with_capacity(sequences.len());
        if dedup {
            let mut first_seen: HashMap<Digest, usize> = HashMap::new();
            for (index, func) in sequences.iter().enumerate() {
                let rep = *first_seen.entry(hash_function(func)).or_insert(index);
                representative.push(rep);
                if rep == index {
                    unique.push(index);
                }
            }
        } else {
            representative.extend(0..sequences.len());
            unique.extend(0..sequences.len());
        }
        Self { representative, unique }
    }

    /// The computed (first-occurrence) indices, in input order.
    pub fn unique_indices(&self) -> &[usize] {
        &self.unique
    }

    /// The canonical index whose report input `index` replays.
    pub fn representative(&self, index: usize) -> usize {
        self.representative[index]
    }

    /// Number of inputs that replay another case's report.
    pub fn cache_hits(&self) -> usize {
        self.representative.len() - self.unique.len()
    }
}

/// Runs `f` over every item of `items` on a scoped worker pool and returns
/// the results in input order.
///
/// `f` receives `(index, item)` and must be a pure function of them for the
/// ordered output to be deterministic. Work is handed out in chunks from an
/// atomic cursor; `jobs == 1` short-circuits to a plain serial map.
pub fn parallel_map_ordered<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_ordered_with(items, jobs, || (), |(), index, item| f(index, item))
}

/// [`parallel_map_ordered`] with per-worker scratch state.
///
/// `init` runs once on each worker thread (and once for the serial
/// short-circuit); the resulting context is passed mutably to every `f` call
/// that worker executes. This is how each worker owns exactly one reusable
/// [`lpo_tv::prelude::EvalArena`] for the verification hot path — the scratch
/// state must not influence results (it is reset per use), or determinism
/// across `--jobs` values breaks.
pub fn parallel_map_ordered_with<T, R, C, I, F>(items: &[T], jobs: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    let jobs = jobs.min(items.len()).max(1);
    if jobs == 1 {
        let mut context = init();
        return items.iter().enumerate().map(|(i, item)| f(&mut context, i, item)).collect();
    }

    // Hand out contiguous chunks so neighbouring (usually similar-sized)
    // cases share a grab, amortizing the atomic and lock traffic: workers
    // buffer a chunk's results locally and store them under one short lock.
    let chunk = (items.len() / (jobs * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut context = init();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    let buffered: Vec<R> = (start..end)
                        .map(|index| f(&mut context, index, &items[index]))
                        .collect();
                    let mut locked = slots.lock().expect("result store poisoned");
                    for (index, result) in (start..end).zip(buffered) {
                        locked[index] = Some(result);
                    }
                }
            });
        }
    });

    slots
        .into_inner()
        .expect("result store poisoned")
        .into_iter()
        .map(|slot| slot.expect("worker pool filled every slot"))
        .collect()
}

/// The outcome of one engine batch: per-case reports in input order, their
/// aggregate summary, and the execution statistics.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// One report per input sequence, in input order.
    pub reports: Vec<CaseReport>,
    /// Aggregates folded in input order.
    pub summary: RunSummary,
    /// Worker/cache/wall-clock accounting.
    pub stats: ExecStats,
}

/// Checkpointing context for a persisted batch run: the durable store, the
/// run key that namespaces this run's case records, and whether records
/// already present under that key should be replayed (`--resume`).
#[derive(Clone, Copy, Debug)]
pub struct Persist<'a> {
    /// The durable store case checkpoints are written to / replayed from.
    pub store: &'a VerdictStore,
    /// Namespace for this run's case records — two runs that must not see
    /// each other's checkpoints (different tables, different configurations)
    /// use different keys.
    pub run_key: &'a str,
    /// Replay already-checkpointed cases instead of recomputing them. Off,
    /// the batch recomputes (and re-records) everything; completed work is
    /// still checkpointed either way, so a crashed run can be resumed.
    pub resume: bool,
}

/// An observer callback: `(input case index, settled report, resumed)`.
pub type BatchObserver<'a> = &'a (dyn Fn(usize, &CaseReport, bool) + Sync);

/// Observation and control hooks for a batch run — the serving layer's
/// window into the engine.
///
/// Both hooks are scheduling-sensitive in *when* they fire but must never
/// influence *what* is computed: the observer only reads settled reports, and
/// cancellation only substitutes `Failed` reports for cases that have not
/// started (which are never checkpointed, so a resumed or resubmitted run
/// recomputes them).
#[derive(Clone, Copy, Default)]
pub struct BatchHooks<'a> {
    /// Called once per *unique* case as its report settles, with
    /// `(input case index, report, resumed)` where `resumed` says the report
    /// replayed from a checkpoint instead of being computed. Calls arrive in
    /// completion order (scheduling-dependent); dedup replays do not fire it —
    /// consumers that need every input index replay duplicates from the
    /// returned [`BatchResult::reports`].
    pub observer: Option<BatchObserver<'a>>,
    /// Cooperative cancellation, checked at the case boundary: once set, every
    /// not-yet-started case reports
    /// [`CaseOutcome::Failed`](crate::report::CaseOutcome::Failed) with a
    /// "job cancelled" error instead of running. In-flight cases complete
    /// normally.
    pub cancel: Option<&'a AtomicBool>,
}

impl BatchHooks<'_> {
    /// `true` once the cancel flag (if any) has been raised.
    fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

/// The error text of a report produced by [`BatchHooks::cancel`].
pub const CANCELLED_ERROR: &str = "job cancelled before this case started";

/// Fans `Lpo::optimize_sequence` out over `sequences`: the core of
/// [`Lpo::run_sequences`](crate::Lpo::run_sequences).
///
/// Each unique sequence gets a fresh session from `factory` (seeded by
/// `(round, first_occurrence_index)`); duplicates are replayed from the dedup
/// cache. With [`ExecConfig::shard_inputs`] on, the unit of scheduling is a
/// *shard*: workers pull whole cases off a cursor, each case's survivor
/// sweeps fork into stealable input-range shards, and workers out of cases
/// drain the shard deque for the cases still in flight (see [`crate::shard`]).
pub fn run_batch(
    lpo: &Lpo,
    factory: &dyn ModelFactory,
    round: u64,
    sequences: &[Function],
    config: &ExecConfig,
) -> BatchResult {
    run_batch_persisted(lpo, factory, round, sequences, config, None)
}

/// [`run_batch`] with fault tolerance at the case boundary:
///
/// * every computed case runs under `catch_unwind`, so a panicking model
///   session (or any bug confined to one case) yields a
///   [`CaseOutcome::Failed`](crate::report::CaseOutcome::Failed) report
///   instead of tearing down the batch — the other cases are unaffected,
///   byte-for-byte;
/// * with `persist` set, each completed non-`Failed` unique case is
///   checkpointed into the store as it finishes (crash-safe: the store's
///   records are atomic), and [`Persist::resume`] replays checkpointed
///   cases instead of recomputing them. `Failed` cases are *not*
///   checkpointed — a resumed run retries them.
pub fn run_batch_persisted(
    lpo: &Lpo,
    factory: &dyn ModelFactory,
    round: u64,
    sequences: &[Function],
    config: &ExecConfig,
    persist: Option<&Persist<'_>>,
) -> BatchResult {
    run_batch_hooked(lpo, factory, round, sequences, config, persist, BatchHooks::default())
}

/// [`run_batch_persisted`] with [`BatchHooks`]: per-case streaming and
/// cooperative per-job cancellation, the entry point `lpo-serve` drives.
pub fn run_batch_hooked(
    lpo: &Lpo,
    factory: &dyn ModelFactory,
    round: u64,
    sequences: &[Function],
    config: &ExecConfig,
    persist: Option<&Persist<'_>>,
    hooks: BatchHooks<'_>,
) -> BatchResult {
    let start = Instant::now();
    let plan = DedupPlan::new(sequences, config.dedup);
    let shard_size = config.shard_size.max(1);
    let store_before = persist.map(|p| p.store.stats()).unwrap_or_default();

    // Resume: pull checkpointed reports for the unique cases before any
    // worker starts, so scheduling never observes the store mid-flight.
    let unique = plan.unique_indices();
    let loaded: Vec<Option<CaseReport>> = unique
        .iter()
        .map(|&case_index| -> Option<CaseReport> {
            let p = persist?;
            if !p.resume {
                return None;
            }
            let digest = hash_function(&sequences[case_index]).0;
            let blob = p.store.case(p.run_key, &case_key(round, case_index, digest))?;
            // A malformed blob is a miss: recompute, never trust it.
            CaseReport::from_checkpoint_blob(&blob)
        })
        .collect();
    let resumed_cases = loaded.iter().filter(|slot| slot.is_some()).count();

    // Only the cases actually computed count as schedulable work.
    let pending: Vec<usize> = unique
        .iter()
        .zip(&loaded)
        .filter(|(_, loaded)| loaded.is_none())
        .map(|(&case_index, _)| case_index)
        .collect();
    let work = if config.shard_inputs {
        shard_work_units(lpo, sequences, &pending, shard_size)
    } else {
        pending.len()
    };
    let jobs = config.effective_jobs(work);
    let tv_before = lpo.tv_snapshot();

    // One computed case, fault-isolated: the session spawn and the whole
    // optimize–verify loop run under `catch_unwind`, and the finished report
    // is checkpointed before the slot is filled.
    let run_case = |slot: usize, arena: &mut EvalArena, report_fn: &dyn Fn(&mut EvalArena) -> CaseReport| -> CaseReport {
        if let Some(report) = &loaded[slot] {
            if let Some(observer) = hooks.observer {
                observer(unique[slot], report, true);
            }
            return report.clone();
        }
        let case_start = Instant::now();
        // Cancellation substitutes a `Failed` report for a case that has not
        // started. Failed reports are never checkpointed, so a resubmission
        // retries the case.
        let report = if hooks.cancelled() {
            CaseReport::failed(CANCELLED_ERROR.to_string(), 0, case_start.elapsed())
        } else {
            match catch_unwind(AssertUnwindSafe(|| report_fn(arena))) {
                Ok(report) => report,
                Err(payload) => CaseReport::failed(
                    format!("case panicked: {}", panic_message(payload.as_ref())),
                    0,
                    case_start.elapsed(),
                ),
            }
        };
        if let Some(p) = persist {
            if !report.outcome.is_failed() {
                let case_index = unique[slot];
                let digest = hash_function(&sequences[case_index]).0;
                p.store.record_case(
                    p.run_key,
                    &case_key(round, case_index, digest),
                    &report.checkpoint_blob(),
                );
            }
        }
        if let Some(observer) = hooks.observer {
            observer(unique[slot], &report, false);
        }
        report
    };

    // Each worker thread owns one reusable evaluation arena: the register
    // file behind every concrete evaluation that case's verification runs.
    let computed: Vec<CaseReport> = if config.shard_inputs {
        let runtime = ShardRuntime::new(jobs, lpo.shard_counters().clone());
        let driver = RuntimeSweepDriver::new(runtime.clone());
        runtime.run_cases(unique.len(), |slot, arena| {
            run_case(slot, arena, &|arena| {
                let case_index = unique[slot];
                let mut session = factory.session(round, case_index as u64);
                lpo.optimize_sequence_sharded(
                    session.as_mut(),
                    &sequences[case_index],
                    arena,
                    &driver,
                    shard_size,
                )
            })
        })
    } else {
        parallel_map_ordered_with(unique, jobs, EvalArena::new, |arena, slot, &case_index| {
            run_case(slot, arena, &|arena| {
                let mut session = factory.session(round, case_index as u64);
                lpo.optimize_sequence_in(session.as_mut(), &sequences[case_index], arena)
            })
        })
    };

    // Replay: map each input index to its representative's report. The
    // representative set is exactly `plan.unique_indices()`, in order.
    let slot_of: HashMap<usize, usize> =
        plan.unique_indices().iter().enumerate().map(|(slot, &index)| (index, slot)).collect();
    let reports: Vec<CaseReport> = (0..sequences.len())
        .map(|index| computed[slot_of[&plan.representative(index)]].clone())
        .collect();

    let summary = RunSummary::from_reports(&reports);
    let stats = ExecStats {
        jobs,
        cases: sequences.len(),
        unique_cases: plan.unique_indices().len(),
        cache_hits: plan.cache_hits(),
        failed_cases: summary.failed,
        resumed_cases,
        store: persist.map(|p| p.store.stats().since(store_before)).unwrap_or_default(),
        wall_time: start.elapsed(),
        tv: lpo.tv_snapshot().since(tv_before),
    };
    BatchResult { reports, summary, stats }
}

/// Renders a `catch_unwind` payload: the panic message when it is a string
/// (the overwhelmingly common case), a placeholder otherwise.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::LpoConfig;
    use lpo_ir::parser::parse_function;
    use lpo_llm::model::ModelSession;
    use lpo_llm::prelude::{gemini2_0t, SimulatedModelFactory};

    const CLAMP: &str = "define i8 @src(i32 %0) {\n\
        %2 = icmp slt i32 %0, 0\n\
        %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
        %4 = trunc nuw i32 %3 to i8\n\
        %5 = select i1 %2, i8 0, i8 %4\n\
        ret i8 %5\n}";

    const BORING: &str = "define i32 @f(i32 %x, i32 %y) {\n\
        %a = mul i32 %x, %y\n\
        %b = add i32 %a, %y\n\
        ret i32 %b\n}";

    /// A factory that counts how many sessions it spawns — used to prove the
    /// dedup cache replays instead of recomputing.
    struct CountingFactory {
        inner: SimulatedModelFactory,
        sessions: AtomicUsize,
    }

    impl CountingFactory {
        fn new(seed: u64) -> Self {
            Self { inner: SimulatedModelFactory::new(gemini2_0t(), seed), sessions: AtomicUsize::new(0) }
        }
    }

    impl ModelFactory for CountingFactory {
        fn name(&self) -> &str {
            self.inner.name()
        }

        fn session(&self, round: u64, case_index: u64) -> Box<dyn ModelSession> {
            self.sessions.fetch_add(1, Ordering::Relaxed);
            self.inner.session(round, case_index)
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for jobs in [1, 3, 8] {
            let out = parallel_map_ordered(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map_ordered(&empty, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn dedup_plan_picks_first_occurrences() {
        let a = parse_function(CLAMP).unwrap();
        let b = parse_function(BORING).unwrap();
        // Renamed duplicate of `a`: structurally identical.
        let a2 = parse_function(&CLAMP.replace("@src", "@other")).unwrap();
        let plan = DedupPlan::new(&[a.clone(), b.clone(), a2, a], true);
        assert_eq!(plan.unique_indices(), &[0, 1]);
        assert_eq!(plan.representative(2), 0);
        assert_eq!(plan.representative(3), 0);
        assert_eq!(plan.cache_hits(), 2);

        let no_dedup = DedupPlan::new(&[b.clone(), b], false);
        assert_eq!(no_dedup.unique_indices(), &[0, 1]);
        assert_eq!(no_dedup.cache_hits(), 0);
    }

    #[test]
    fn dedup_cache_replays_instead_of_recomputing() {
        let clamp = parse_function(CLAMP).unwrap();
        let boring = parse_function(BORING).unwrap();
        let sequences = vec![clamp.clone(), boring, clamp.clone(), clamp];
        let lpo = Lpo::new(LpoConfig::default());
        let factory = CountingFactory::new(99);

        let batch = run_batch(&lpo, &factory, 0, &sequences, &ExecConfig::serial());
        // Two unique digests → exactly two sessions, two cache replays.
        assert_eq!(factory.sessions.load(Ordering::Relaxed), 2);
        assert_eq!(batch.stats.unique_cases, 2);
        assert_eq!(batch.stats.cache_hits, 2);
        assert_eq!(batch.stats.cases, 4);
        assert_eq!(batch.summary.cases, 4);
        // The replayed reports are byte-identical to their representative.
        assert_eq!(batch.reports[2].fingerprint(), batch.reports[0].fingerprint());
        assert_eq!(batch.reports[3].fingerprint(), batch.reports[0].fingerprint());
    }

    #[test]
    fn hooks_observe_unique_cases_and_cancel_cleanly() {
        let clamp = parse_function(CLAMP).unwrap();
        let boring = parse_function(BORING).unwrap();
        let sequences = vec![clamp.clone(), boring, clamp];
        let lpo = Lpo::new(LpoConfig::default());
        let factory = SimulatedModelFactory::new(gemini2_0t(), 42);

        // The observer fires once per unique case, with its input index.
        let seen: Mutex<Vec<(usize, String, bool)>> = Mutex::new(Vec::new());
        let observer = |index: usize, report: &CaseReport, resumed: bool| {
            seen.lock().unwrap().push((index, report.fingerprint(), resumed));
        };
        let hooks = BatchHooks { observer: Some(&observer), cancel: None };
        let batch = run_batch_hooked(
            &lpo,
            &factory,
            0,
            &sequences,
            &ExecConfig::serial(),
            None,
            hooks,
        );
        let mut seen = seen.into_inner().unwrap();
        seen.sort_by_key(|(index, _, _)| *index);
        assert_eq!(seen.len(), 2, "one observation per unique case");
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[1].0, 1);
        assert_eq!(seen[0].1, batch.reports[0].fingerprint());
        assert_eq!(seen[1].1, batch.reports[1].fingerprint());
        assert!(seen.iter().all(|(_, _, resumed)| !resumed));

        // A pre-raised cancel flag fails every case without running any.
        let cancel = AtomicBool::new(true);
        let factory_counting = CountingFactory::new(42);
        let hooks = BatchHooks { observer: None, cancel: Some(&cancel) };
        let cancelled = run_batch_hooked(
            &lpo,
            &factory_counting,
            0,
            &sequences,
            &ExecConfig::serial(),
            None,
            hooks,
        );
        assert_eq!(factory_counting.sessions.load(Ordering::Relaxed), 0);
        assert_eq!(cancelled.summary.failed, 3);
        assert!(cancelled
            .reports
            .iter()
            .all(|r| r.fingerprint().contains(CANCELLED_ERROR)));
    }

    #[test]
    fn parallel_batches_are_bit_identical_to_serial() {
        let suite: Vec<Function> = [CLAMP, BORING]
            .iter()
            .cycle()
            .take(12)
            .map(|text| parse_function(text).unwrap())
            .collect();
        let lpo = Lpo::new(LpoConfig::default());
        let factory = SimulatedModelFactory::new(gemini2_0t(), 42);

        let serial = run_batch(&lpo, &factory, 1, &suite, &ExecConfig::serial());
        let parallel = run_batch(&lpo, &factory, 1, &suite, &ExecConfig::with_jobs(4));
        let serial_prints: Vec<String> =
            serial.reports.iter().map(CaseReport::fingerprint).collect();
        let parallel_prints: Vec<String> =
            parallel.reports.iter().map(CaseReport::fingerprint).collect();
        assert_eq!(serial_prints, parallel_prints);
        assert_eq!(serial.summary.fingerprint(), parallel.summary.fingerprint());
        assert_eq!(serial.stats.cache_hits, parallel.stats.cache_hits);
        // Jobs resolve against shard work units, not unique cases: the two
        // unique cases decompose into enough sweep shards to keep all four
        // workers schedulable.
        assert!(parallel.stats.jobs > parallel.stats.unique_cases.min(4));
        assert_eq!(parallel.stats.jobs, 4);

        // The case-granular engine (sharding off) stays bit-identical too.
        let unsharded = ExecConfig { shard_inputs: false, ..ExecConfig::with_jobs(4) };
        let legacy = run_batch(&lpo, &factory, 1, &suite, &unsharded);
        let legacy_prints: Vec<String> =
            legacy.reports.iter().map(CaseReport::fingerprint).collect();
        assert_eq!(legacy_prints, parallel_prints);
        assert_eq!(legacy.stats.jobs, 2, "2 unique cases bound the case-granular pool");
    }

    #[test]
    fn one_case_with_many_shards_resolves_to_a_full_pool() {
        // A batch of ONE case used to pin `--jobs N` to one worker. With
        // sharding, the single case's sweep decomposes into enough shards to
        // occupy the whole pool, and the resolved job count must say so.
        let wide = parse_function(
            "define i16 @w(i16 %x) {\n %r = add i16 %x, 1\n ret i16 %r\n}",
        )
        .unwrap();
        let mut config = LpoConfig::default();
        config.tv.inputs.exhaustive_bits = 16;
        let lpo = Lpo::new(config);
        let suite = vec![wide];
        let plan = DedupPlan::new(&suite, true);

        // 65536 exhaustive inputs, 16 probed, 256-input shards → 1 + 256 units.
        let units = shard_work_units(&lpo, &suite, plan.unique_indices(), 256);
        assert_eq!(units, 1 + (65536usize - 16).div_ceil(256));
        assert_eq!(ExecConfig::with_jobs(8).effective_jobs(units), 8);
        // Sharding off: the same batch is a single work unit.
        assert_eq!(ExecConfig::with_jobs(8).effective_jobs(plan.unique_indices().len()), 1);
        // An ∞ shard size degenerates to one spine + one sweep unit per case.
        assert_eq!(shard_work_units(&lpo, &suite, plan.unique_indices(), usize::MAX), 2);

        // And a real run resolves accordingly.
        let factory = SimulatedModelFactory::new(gemini2_0t(), 7);
        let batch = run_batch(&lpo, &factory, 0, &suite, &ExecConfig::with_jobs(4));
        assert_eq!(batch.stats.jobs, 4);
        assert_eq!(batch.stats.cases, 1);
    }

    #[test]
    fn exec_config_resolution() {
        assert_eq!(ExecConfig::serial().effective_jobs(100), 1);
        assert_eq!(ExecConfig::with_jobs(8).effective_jobs(3), 3);
        assert_eq!(ExecConfig::with_jobs(8).effective_jobs(0), 1);
        assert!(ExecConfig::default().effective_jobs(64) >= 1);
        let stats = ExecStats {
            jobs: 2,
            cases: 10,
            unique_cases: 8,
            cache_hits: 2,
            failed_cases: 0,
            resumed_cases: 0,
            store: StoreStats::default(),
            wall_time: Duration::from_secs(2),
            tv: TvSnapshot::default(),
        };
        assert!((stats.cases_per_second() - 5.0).abs() < 1e-9);
        assert_eq!(ExecStats::default().cases_per_second(), 0.0);
    }

    // `Function` (plain data) must stay shareable across the pool's workers.
    fn _assert_sync(f: &Function) -> &(dyn Sync + '_) {
        f
    }
}
