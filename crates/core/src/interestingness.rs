//! The interestingness check (§3.3 of the paper).
//!
//! A candidate is *interesting* when it potentially manifests a beneficial
//! optimization: fewer instructions, or fewer statically-estimated cycles on
//! the configured target, or — at equal cost — a syntactically different form
//! (which may enable further optimizations downstream). The check runs before
//! the (more expensive) correctness check, exactly as in the paper.

use lpo_ir::function::Function;
use lpo_ir::hash::hash_function;
use lpo_mca::{CostModel, Target};

/// Why a candidate was or was not considered interesting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterestVerdict {
    /// Fewer non-terminator instructions than the original.
    FewerInstructions,
    /// Same or more instructions but fewer estimated cycles.
    FewerCycles,
    /// Same instruction count and cycles, but a syntactically different form.
    DifferentForm,
    /// Identical to the original (the most common uninteresting case).
    Identical,
    /// Strictly worse in both metrics.
    Worse,
}

impl InterestVerdict {
    /// Returns `true` if the candidate passes the interestingness check.
    pub fn is_interesting(self) -> bool {
        matches!(
            self,
            InterestVerdict::FewerInstructions | InterestVerdict::FewerCycles | InterestVerdict::DifferentForm
        )
    }
}

/// The cached source side of the interestingness check: the cost-model
/// estimate and structural hash of the original sequence, computed **once per
/// case** so that verifying k candidate rewrites of one sequence estimates
/// the source exactly once (the same caching shape as the translation
/// validator's `SourceCache`).
#[derive(Clone, Debug)]
pub struct SourceCost {
    model: CostModel,
    instructions: usize,
    total_cycles: f64,
    digest: lpo_ir::hash::Digest,
}

impl SourceCost {
    /// Estimates and hashes the original once.
    pub fn new(original: &Function, target: Target) -> Self {
        let model = CostModel::new(target);
        let estimate = model.estimate(original);
        Self {
            model,
            instructions: estimate.instructions,
            total_cycles: estimate.total_cycles,
            digest: hash_function(original),
        }
    }

    /// Classifies a candidate against the cached source estimate.
    pub fn classify(&self, candidate: &Function) -> InterestVerdict {
        let after = self.model.estimate(candidate);
        if after.instructions < self.instructions {
            return InterestVerdict::FewerInstructions;
        }
        if after.total_cycles < self.total_cycles {
            return InterestVerdict::FewerCycles;
        }
        if after.instructions == self.instructions && after.total_cycles == self.total_cycles {
            if self.digest == hash_function(candidate) {
                InterestVerdict::Identical
            } else {
                InterestVerdict::DifferentForm
            }
        } else {
            InterestVerdict::Worse
        }
    }

    /// Convenience wrapper: `true` iff the candidate passes the check.
    pub fn is_interesting(&self, candidate: &Function) -> bool {
        self.classify(candidate).is_interesting()
    }
}

/// Classifies a candidate against the original on the given target.
///
/// One-shot convenience over [`SourceCost`]; callers checking several
/// candidates of the same original should build the cache once.
pub fn classify(original: &Function, candidate: &Function, target: Target) -> InterestVerdict {
    SourceCost::new(original, target).classify(candidate)
}

/// Convenience wrapper: `true` iff the candidate passes the check.
pub fn is_interesting(original: &Function, candidate: &Function, target: Target) -> bool {
    classify(original, candidate, target).is_interesting()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    const SRC: &str = "define i8 @src(i32 %0) {\n\
        %2 = icmp slt i32 %0, 0\n\
        %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
        %4 = trunc nuw i32 %3 to i8\n\
        %5 = select i1 %2, i8 0, i8 %4\n\
        ret i8 %5\n}";
    const TGT: &str = "define i8 @tgt(i32 %0) {\n\
        %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
        %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
        %4 = trunc nuw i32 %3 to i8\n\
        ret i8 %4\n}";

    #[test]
    fn shorter_candidates_are_interesting() {
        let src = parse_function(SRC).unwrap();
        let tgt = parse_function(TGT).unwrap();
        assert_eq!(classify(&src, &tgt, Target::Btver2Like), InterestVerdict::FewerInstructions);
        assert!(is_interesting(&src, &tgt, Target::Btver2Like));
        // The reverse direction is worse.
        assert_eq!(classify(&tgt, &src, Target::Btver2Like), InterestVerdict::Worse);
        assert!(!is_interesting(&tgt, &src, Target::Btver2Like));
    }

    #[test]
    fn identical_candidates_are_not_interesting() {
        let src = parse_function(SRC).unwrap();
        // Same structure, different value names: still "identical" for the check.
        let renamed = parse_function(&SRC.replace("%2", "%c").replace("%3", "%m")).unwrap();
        assert_eq!(classify(&src, &renamed, Target::Btver2Like), InterestVerdict::Identical);
        assert!(!is_interesting(&src, &src.clone(), Target::Btver2Like));
    }

    #[test]
    fn cheaper_but_equal_length_counts_as_fewer_cycles() {
        // Replacing a division with a shift keeps one instruction but is much cheaper.
        let slow = parse_function("define i32 @f(i32 %x) {\n %r = udiv i32 %x, 8\n ret i32 %r\n}").unwrap();
        let fast = parse_function("define i32 @f(i32 %x) {\n %r = lshr i32 %x, 3\n ret i32 %r\n}").unwrap();
        assert_eq!(classify(&slow, &fast, Target::Btver2Like), InterestVerdict::FewerCycles);
    }

    #[test]
    fn different_form_at_equal_cost_is_interesting() {
        let a = parse_function("define i32 @f(i32 %x, i32 %y) {\n %r = add i32 %x, %y\n ret i32 %r\n}").unwrap();
        let b = parse_function("define i32 @f(i32 %x, i32 %y) {\n %r = add i32 %y, %x\n ret i32 %r\n}").unwrap();
        assert_eq!(classify(&a, &b, Target::Btver2Like), InterestVerdict::DifferentForm);
    }
}
