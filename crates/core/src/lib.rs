//! # lpo
//!
//! The LPO pipeline itself: Algorithm 1 of the paper. Given a wrapped
//! instruction sequence, LPO prompts an optimizer model for a better
//! implementation, pushes the candidate through the three-stage verification
//! (the `opt` syntax/canonicalization check, the interestingness check, and
//! the translation-validation correctness check) and, on failure, feeds the
//! diagnostics back to the model for another attempt.
//!
//! ```
//! use lpo::prelude::*;
//! use lpo_ir::parser::parse_function;
//! use lpo_llm::prelude::{gemini2_0t, SimulatedModel};
//!
//! let src = parse_function(
//!     "define i8 @src(i32 %0) {\n\
//!      %2 = icmp slt i32 %0, 0\n\
//!      %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
//!      %4 = trunc nuw i32 %3 to i8\n\
//!      %5 = select i1 %2, i8 0, i8 %4\n\
//!      ret i8 %5\n}",
//! ).unwrap();
//! let lpo = Lpo::new(LpoConfig::default());
//! let mut model = SimulatedModel::new(gemini2_0t(), 1);
//! let report = lpo.optimize_sequence(&mut model, &src);
//! // With a strong reasoning model the clamp is usually found; either way the
//! // report records what happened.
//! assert!(report.attempts >= 1);
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

pub mod exec;
pub mod interestingness;
pub mod persist;
pub mod pipeline;
pub mod report;
pub mod shard;

pub use exec::{parallel_map_ordered, parallel_map_ordered_with, shard_work_units, BatchHooks, BatchResult, DedupPlan, ExecConfig, ExecStats, Persist, CANCELLED_ERROR, DEFAULT_SHARD_SIZE};
pub use interestingness::{is_interesting, InterestVerdict};
pub use persist::{case_key, store_version, PIPELINE_REVISION};
pub use pipeline::{Lpo, LpoConfig, TvSnapshot};
pub use report::{CaseOutcome, CaseReport, RunSummary};
pub use shard::{RuntimeSweepDriver, ShardCounters, ShardRuntime, ShardSlot, ShardStats};
pub use lpo_store::{StoreError, StoreStats, VerdictStore};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::exec::{parallel_map_ordered, parallel_map_ordered_with, shard_work_units, BatchHooks, BatchResult, DedupPlan, ExecConfig, ExecStats, Persist, CANCELLED_ERROR, DEFAULT_SHARD_SIZE};
    pub use crate::interestingness::{is_interesting, InterestVerdict};
    pub use crate::persist::{case_key, store_version, PIPELINE_REVISION};
    pub use crate::pipeline::{Lpo, LpoConfig, TvSnapshot};
    pub use crate::report::{CaseOutcome, CaseReport, RunSummary};
    pub use crate::shard::{RuntimeSweepDriver, ShardCounters, ShardRuntime, ShardSlot, ShardStats};
    pub use lpo_store::{StoreError, StoreStats, VerdictStore};
}
