//! # lpo-souper
//!
//! An enumerative, CEGIS-flavoured superoptimizer baseline modelled on Souper
//! (Sasnauskas et al.), as used for comparison in the LPO paper.
//!
//! Faithful to the original's documented restrictions, this baseline:
//!
//! * only handles the **integer-only, scalar, memory-free** subset of the IR —
//!   functions containing loads/stores/GEPs, floating point, vectors or
//!   intrinsic calls are reported as [`Outcome::Unsupported`] (this is why the
//!   paper's Souper misses the `llvm.umin.*` clamp of Figure 1 and both
//!   memory/FP case studies);
//! * synthesizes replacement candidates by enumerating instruction DAGs of
//!   bounded size (`enum_depth`, the paper's `Enum` parameter, 0–3) over the
//!   function arguments and a small constant pool;
//! * verifies each candidate with the translation validator and accepts the
//!   first strictly cheaper one;
//! * models the cost of the search: enumerative synthesis time grows steeply
//!   with `Enum`, so each run reports both the real elapsed time and a
//!   *modelled* time derived from the number of candidates explored,
//!   calibrated against Table 4 of the paper (see `EXPERIMENTS.md`).
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

use lpo::shard::{ShardCounters, ShardRuntime, ShardSlot, ShardStats};
use lpo_ir::apint::ApInt;
use lpo_ir::flags::IntFlags;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, ICmpPred, InstKind, Instruction, Value};
use lpo_ir::types::Type;
use lpo_tv::frozen::FrozenCase;
use lpo_tv::inputs::InputConfig;
use lpo_tv::prelude::EvalArena;
use lpo_tv::refine::{CompileCache, SourceCache, TvConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a Souper run.
#[derive(Clone, Debug)]
pub struct SouperConfig {
    /// The `Enum` parameter: maximum number of synthesized instructions.
    /// `0` is the default configuration the paper calls Souper-Default.
    pub enum_depth: u32,
    /// The per-case timeout applied to the *modelled* time (the paper uses 20 minutes).
    pub timeout: Duration,
    /// Hard cap on candidates explored per case, to bound real wall-clock time.
    pub candidate_budget: usize,
}

impl Default for SouperConfig {
    fn default() -> Self {
        Self { enum_depth: 0, timeout: Duration::from_secs(20 * 60), candidate_budget: 5_000 }
    }
}

impl SouperConfig {
    /// The default configuration (`Enum = 0`).
    pub fn default_mode() -> Self {
        Self::default()
    }

    /// An enumerative configuration with the given `Enum` value (1–3 in the paper).
    pub fn with_enum(enum_depth: u32) -> Self {
        Self { enum_depth, ..Self::default() }
    }
}

/// The result category of one Souper run.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// A strictly cheaper, verified replacement was found.
    Found(Function),
    /// The search space was exhausted without finding a replacement.
    NotFound,
    /// The input uses instructions outside Souper's supported subset.
    Unsupported(String),
    /// The (modelled) search exceeded the timeout.
    Timeout,
}

/// The outcome plus time accounting for one case.
#[derive(Clone, Debug)]
pub struct SouperResult {
    /// What happened.
    pub outcome: Outcome,
    /// Real wall-clock time spent by this reproduction.
    pub elapsed: Duration,
    /// Modelled time a real Souper run of this configuration would take,
    /// derived from the number of candidates explored (calibrated to Table 4).
    pub modeled: Duration,
    /// How many candidates were enumerated and checked.
    pub candidates_tried: usize,
    /// The search phase that produced a [`Outcome::Found`]: `Some(0)` for the
    /// depth-0 leaf scan, `Some(d)` for a replacement with `d` synthesized
    /// instructions, `None` otherwise.
    ///
    /// Because a run at `enum_depth = d` explores exactly the same candidates
    /// in the same order as the depth-`d` prefix of a deeper run (same budget
    /// counter, same pruning), `found_at_depth <= d` on a deep run tells you
    /// precisely what a shallower run would have concluded — the drivers use
    /// one `Enum = 2` search per case instead of re-running every level.
    pub found_at_depth: Option<u32>,
}

impl SouperResult {
    /// Returns `true` if a replacement was found.
    pub fn found(&self) -> bool {
        matches!(self.outcome, Outcome::Found(_))
    }
}

/// Returns `Some(reason)` if the function is outside Souper's supported subset.
pub fn unsupported_reason(func: &Function) -> Option<String> {
    for p in &func.params {
        if p.ty.is_vector() {
            return Some("vector-typed parameter".to_string());
        }
        if p.ty.is_float() {
            return Some("floating-point parameter".to_string());
        }
        if p.ty.is_ptr() {
            return Some("pointer parameter (memory is not supported)".to_string());
        }
    }
    if func.ret_ty.is_vector() || func.ret_ty.is_float_or_float_vector() {
        return Some("unsupported return type".to_string());
    }
    for (_, inst) in func.iter_insts() {
        match &inst.kind {
            InstKind::Load { .. } | InstKind::Store { .. } | InstKind::Gep { .. } | InstKind::Alloca { .. } => {
                return Some(format!("memory instruction '{}'", inst.kind.opcode_name()))
            }
            InstKind::FBinary { .. } | InstKind::FCmp { .. } => {
                return Some("floating-point instruction".to_string())
            }
            InstKind::Call { intrinsic, .. } => {
                return Some(format!("unsupported intrinsic 'llvm.{}'", intrinsic.short_name()))
            }
            InstKind::ShuffleVector { .. } | InstKind::ExtractElement { .. } | InstKind::InsertElement { .. } => {
                return Some("vector instruction".to_string())
            }
            _ => {}
        }
        if inst.ty.is_vector() {
            return Some("vector-typed instruction".to_string());
        }
    }
    None
}

fn quick_tv() -> TvConfig {
    TvConfig {
        inputs: InputConfig { exhaustive_bits: 10, random_samples: 48, seed: 0x50f4 },
        ..TvConfig::default()
    }
}

/// Per-candidate modelled synthesis cost in seconds, by `Enum` value. The
/// constants are calibrated so that the Table 4 reproduction lands near the
/// paper's per-case averages (2.8 s, 37.2 s, 144.4 s, 183.7 s).
fn modeled_seconds_per_candidate(enum_depth: u32) -> f64 {
    match enum_depth {
        0 => 0.09,
        1 => 0.055,
        2 => 0.0205,
        3 => 0.0069,
        _ => 0.005,
    }
}

/// Runs the superoptimizer over a batch of sequences on `jobs` worker
/// threads (`0` = available parallelism), returning results in input order.
///
/// Each case is a pure function of `(func, config)`, so the output is
/// bit-identical for every worker count — the same contract as the session
/// engine in `lpo-core`, which is what lets the Table 4 drivers run the
/// baselines and LPO side by side in parallel.
pub fn superoptimize_batch(
    functions: &[Function],
    config: &SouperConfig,
    jobs: usize,
) -> Vec<SouperResult> {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
    .min(functions.len())
    .max(1);
    // One compiled-function cache per batch: candidates that survive the
    // verifier's probe (leaf replacements like `ret %x` recur across every
    // case of a matching signature) compile once for the whole pool. Cache
    // hits cannot change outcomes, so the jobs-invariance contract holds.
    let cache = CompileCache::new();
    if jobs == 1 {
        return functions.iter().map(|f| superoptimize_with_cache(f, config, &cache)).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let slots: std::sync::Mutex<Vec<Option<SouperResult>>> =
        std::sync::Mutex::new(vec![None; functions.len()]);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= functions.len() {
                    break;
                }
                let result = superoptimize_with_cache(&functions[index], config, &cache);
                slots.lock().expect("result store poisoned")[index] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("result store poisoned")
        .into_iter()
        .map(|slot| slot.expect("worker pool filled every slot"))
        .collect()
}

/// Runs the superoptimizer on one wrapped instruction sequence.
pub fn superoptimize(func: &Function, config: &SouperConfig) -> SouperResult {
    superoptimize_with_cache(func, config, &CompileCache::new())
}

/// [`superoptimize`] with an explicit compiled-function cache, shared across
/// a batch by [`superoptimize_batch`]. The cache only affects wall-clock
/// time, never outcomes.
pub fn superoptimize_with_cache(
    func: &Function,
    config: &SouperConfig,
    compile_cache: &CompileCache,
) -> SouperResult {
    let start = Instant::now();
    if let Some(reason) = unsupported_reason(func) {
        return SouperResult {
            outcome: Outcome::Unsupported(reason),
            elapsed: start.elapsed(),
            modeled: Duration::from_millis(400),
            candidates_tried: 0,
            found_at_depth: None,
        };
    }
    // Stage 1, source side, **once per case** and text-free: the search sees
    // the sequence as `opt` would hand it over, as a `Function` value.
    // Corpus sequences are extracted as canonical fixpoints, so this is a
    // cheap confirmation pass there; it replaces nothing per candidate —
    // enumerated candidates are built canonical by construction.
    let mut canonical = func.clone();
    let _ = lpo_opt::pipeline::Pipeline::default().run(&mut canonical);
    let func = &canonical;
    // One cached case per source: the enumerative search verifies up to
    // `candidate_budget` candidates against the same function, so the test
    // inputs and the source's per-input outcomes are computed exactly once,
    // and every evaluation reuses one register-file arena.
    let case = SourceCache::new(func, quick_tv()).with_compile_cache(compile_cache);
    let mut arena = EvalArena::new();
    let original_cost = func.instruction_count();
    let mut tried = 0usize;

    // The candidate pool: argument values and a constant pool.
    let mut pool: Vec<Value> = (0..func.params.len()).map(Value::Arg).collect();
    let mut constants: Vec<ApInt> = Vec::new();
    let ret_ty = func.ret_ty.clone();
    if let Some(width) = ret_ty.int_width() {
        constants.extend([ApInt::zero(width), ApInt::one(width), ApInt::all_ones(width)]);
    }
    for (_, inst) in func.iter_insts() {
        for op in inst.kind.operands() {
            if let Value::Const(c) = op {
                if let Some(v) = c.as_int() {
                    if !constants.contains(v) {
                        constants.push(*v);
                    }
                }
            }
        }
    }
    // CEGIS-style constant synthesis stand-in: derive combinations of the
    // source constants (the real tool asks the solver for them).
    let base_constants = constants.clone();
    for a in &base_constants {
        for b in &base_constants {
            if a.width() != b.width() {
                continue;
            }
            for derived in [a.xor(b), a.add(b), a.sub(b), b.sub(a)] {
                if !constants.contains(&derived) && constants.len() < 24 {
                    constants.push(derived);
                }
            }
        }
    }

    // Depth 0: the replacement must be an existing value or a constant. One
    // scratch function is built on first use and re-pointed per candidate
    // with `set_operand` — the use-list-maintaining mutation API makes a
    // candidate cost one operand swap instead of a whole-function build.
    let mut leaf_candidates: Vec<Value> = pool.clone();
    for c in &constants {
        if Some(c.width()) == ret_ty.int_width() {
            leaf_candidates.push(Value::Const(lpo_ir::constant::Constant::Int(*c)));
        }
    }
    let mut leaf_scratch: Option<Function> = None;
    for candidate in &leaf_candidates {
        tried += 1;
        if func.value_type(candidate) != ret_ty || original_cost == 0 {
            continue;
        }
        let replacement = match &mut leaf_scratch {
            slot @ None => slot.insert(leaf_function(func, candidate.clone())),
            Some(scratch) => {
                let ret_id = *scratch.block(scratch.entry()).insts.last().expect("leaf has a ret");
                scratch.set_operand(ret_id, 0, candidate.clone());
                scratch
            }
        };
        if case.verify_outcome_only(replacement, &mut arena) {
            return finish(start, Outcome::Found(replacement.clone()), tried, config, Some(0));
        }
    }

    // Depth >= 1: enumerate instruction DAGs of up to `enum_depth` new instructions.
    if config.enum_depth >= 1 {
        pool.truncate(4); // keep the search space bounded like the real tool's pruning
        let widths: Vec<Value> = pool.clone();
        let const_values: Vec<Value> = constants
            .iter()
            .map(|c| Value::Const(lpo_ir::constant::Constant::Int(*c)))
            .collect();
        // Comparison-shaped results first when the function returns i1: this is
        // the cheapest part of the space and where boolean sources usually land.
        if ret_ty == Type::i1() {
            // One scratch comparison, rewritten in place per (pred, a, b).
            let mut icmp_scratch: Option<Function> = None;
            for pred in ICmpPred::ALL {
                for a in &widths {
                    for b in widths.iter().chain(const_values.iter()) {
                        tried += 1;
                        if tried >= config.candidate_budget || modeled_time(tried, config) > config.timeout {
                            return finish(start, Outcome::Timeout, tried, config, None);
                        }
                        if func.value_type(a) != func.value_type(b) || !func.value_type(a).is_int() {
                            continue;
                        }
                        let candidate = match &mut icmp_scratch {
                            slot @ None => slot.insert(icmp_function(func, pred, a.clone(), b.clone())),
                            Some(scratch) => {
                                let cmp_id = scratch.block(scratch.entry()).insts[0];
                                scratch.set_inst_kind(
                                    cmp_id,
                                    InstKind::ICmp { pred, lhs: a.clone(), rhs: b.clone() },
                                    Type::i1(),
                                );
                                scratch
                            }
                        };
                        if candidate.instruction_count() < original_cost
                            && case.verify_outcome_only(candidate, &mut arena)
                        {
                            return finish(start, Outcome::Found(candidate.clone()), tried, config, Some(1));
                        }
                    }
                }
            }
        }
        /// Frontier cap per level (real Souper prunes aggressively).
        const FRONTIER_CAP: usize = 256;
        let mut frontier: Vec<Function> = vec![skeleton(func)];
        for level in 0..config.enum_depth {
            let mut next = Vec::new();
            for base in &frontier {
                // One scratch per base: the base body plus a synthesized
                // instruction slot and a `ret` of it, built once; each
                // enumerated candidate is one `set_inst_kind` on the slot
                // instead of a clone–erase–append round (the mutation API
                // keeps the use lists coherent through the rewrites).
                let (mut scratch, synth_id) = extension_scratch(base, &ret_ty);
                let scratch_cost = scratch.instruction_count();
                for op in BinOp::ALL {
                    let synthesized = synth_values(base);
                    for a in widths.iter().chain(const_values.iter()).chain(synthesized.iter()) {
                        for b in widths.iter().chain(const_values.iter()) {
                            if tried >= config.candidate_budget {
                                return finish(start, Outcome::Timeout, tried, config, None);
                            }
                            let a_ty = base.value_type(a);
                            if a_ty != base.value_type(b) || !a_ty.is_int() || a_ty != ret_ty {
                                continue;
                            }
                            tried += 1;
                            if modeled_time(tried, config) > config.timeout {
                                return finish(start, Outcome::Timeout, tried, config, None);
                            }
                            scratch.set_inst_kind(
                                synth_id,
                                InstKind::Binary {
                                    op,
                                    lhs: a.clone(),
                                    rhs: b.clone(),
                                    flags: IntFlags::none(),
                                },
                                a_ty,
                            );
                            if scratch_cost < original_cost
                                && case.verify_outcome_only(&scratch, &mut arena)
                            {
                                return finish(start, Outcome::Found(scratch.clone()), tried, config, Some(level + 1));
                            }
                            if next.len() < FRONTIER_CAP {
                                next.push(scratch.clone());
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
    }

    finish(start, Outcome::NotFound, tried, config, None)
}

fn modeled_time(tried: usize, config: &SouperConfig) -> Duration {
    Duration::from_secs_f64(0.4 + tried as f64 * modeled_seconds_per_candidate(config.enum_depth))
}

fn finish(
    start: Instant,
    outcome: Outcome,
    tried: usize,
    config: &SouperConfig,
    found_at_depth: Option<u32>,
) -> SouperResult {
    let modeled = match outcome {
        Outcome::Timeout => config.timeout,
        _ => modeled_time(tried, config).min(config.timeout),
    };
    SouperResult { outcome, elapsed: start.elapsed(), modeled, candidates_tried: tried, found_at_depth }
}

/// One verification-worthy candidate the enumeration planner produced: the
/// serial search's `tried` counter at the moment it would have verified this
/// candidate, the synthesis depth it would report, and the candidate itself.
#[derive(Clone, Debug)]
struct PlannedCandidate {
    tried: usize,
    depth: u32,
    func: Function,
}

/// Where the enumeration walk stopped when no candidate verifies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WalkEnd {
    /// The space was exhausted after `tried` enumerations.
    Exhausted { tried: usize },
    /// The budget or the modelled timeout hit after `tried` enumerations.
    Timeout { tried: usize },
}

/// The planner's output: the depth-ordered candidate list and the walk's
/// terminal state.
struct EnumPlan {
    candidates: Vec<PlannedCandidate>,
    end: WalkEnd,
}

/// Walks the enumeration space of [`superoptimize_with_cache`] *without
/// verifying*, recording every candidate the serial search would hand to the
/// verifier (type- and cost-gated sites only) together with the `tried`
/// counter at that point.
///
/// # The as-if-serial contract
///
/// This function must mirror the serial search's control flow **exactly** —
/// same enumeration order, same `tried` increments, same budget/timeout
/// check placement, same frontier construction — because the sharded search
/// reports `candidates_tried`/`modeled`/`found_at_depth` from the recorded
/// counters as if the serial loop had stopped at the first verifying
/// candidate. Budget and timeout are pure functions of `tried`, so the
/// planner stops at precisely the serial stop point; the only divergence is
/// that the serial loop early-exits on a verified find, which can only
/// truncate the walk *after* the first find — candidates planned beyond it
/// never affect the first-find-in-order merge. The
/// `sharded_search_is_as_if_serial` test enforces lockstep.
fn plan_candidates(func: &Function, config: &SouperConfig) -> EnumPlan {
    let original_cost = func.instruction_count();
    let mut tried = 0usize;
    let mut candidates: Vec<PlannedCandidate> = Vec::new();

    let mut pool: Vec<Value> = (0..func.params.len()).map(Value::Arg).collect();
    let mut constants: Vec<ApInt> = Vec::new();
    let ret_ty = func.ret_ty.clone();
    if let Some(width) = ret_ty.int_width() {
        constants.extend([ApInt::zero(width), ApInt::one(width), ApInt::all_ones(width)]);
    }
    for (_, inst) in func.iter_insts() {
        for op in inst.kind.operands() {
            if let Value::Const(c) = op {
                if let Some(v) = c.as_int() {
                    if !constants.contains(v) {
                        constants.push(*v);
                    }
                }
            }
        }
    }
    let base_constants = constants.clone();
    for a in &base_constants {
        for b in &base_constants {
            if a.width() != b.width() {
                continue;
            }
            for derived in [a.xor(b), a.add(b), a.sub(b), b.sub(a)] {
                if !constants.contains(&derived) && constants.len() < 24 {
                    constants.push(derived);
                }
            }
        }
    }

    let mut leaf_candidates: Vec<Value> = pool.clone();
    for c in &constants {
        if Some(c.width()) == ret_ty.int_width() {
            leaf_candidates.push(Value::Const(lpo_ir::constant::Constant::Int(*c)));
        }
    }
    let mut leaf_scratch: Option<Function> = None;
    for candidate in &leaf_candidates {
        tried += 1;
        if func.value_type(candidate) != ret_ty || original_cost == 0 {
            continue;
        }
        let replacement = match &mut leaf_scratch {
            slot @ None => slot.insert(leaf_function(func, candidate.clone())),
            Some(scratch) => {
                let ret_id = *scratch.block(scratch.entry()).insts.last().expect("leaf has a ret");
                scratch.set_operand(ret_id, 0, candidate.clone());
                scratch
            }
        };
        candidates.push(PlannedCandidate { tried, depth: 0, func: replacement.clone() });
    }

    if config.enum_depth >= 1 {
        pool.truncate(4);
        let widths: Vec<Value> = pool.clone();
        let const_values: Vec<Value> = constants
            .iter()
            .map(|c| Value::Const(lpo_ir::constant::Constant::Int(*c)))
            .collect();
        if ret_ty == Type::i1() {
            let mut icmp_scratch: Option<Function> = None;
            for pred in ICmpPred::ALL {
                for a in &widths {
                    for b in widths.iter().chain(const_values.iter()) {
                        tried += 1;
                        if tried >= config.candidate_budget || modeled_time(tried, config) > config.timeout {
                            return EnumPlan { candidates, end: WalkEnd::Timeout { tried } };
                        }
                        if func.value_type(a) != func.value_type(b) || !func.value_type(a).is_int() {
                            continue;
                        }
                        let candidate = match &mut icmp_scratch {
                            slot @ None => slot.insert(icmp_function(func, pred, a.clone(), b.clone())),
                            Some(scratch) => {
                                let cmp_id = scratch.block(scratch.entry()).insts[0];
                                scratch.set_inst_kind(
                                    cmp_id,
                                    InstKind::ICmp { pred, lhs: a.clone(), rhs: b.clone() },
                                    Type::i1(),
                                );
                                scratch
                            }
                        };
                        if candidate.instruction_count() < original_cost {
                            candidates.push(PlannedCandidate { tried, depth: 1, func: candidate.clone() });
                        }
                    }
                }
            }
        }
        const FRONTIER_CAP: usize = 256;
        let mut frontier: Vec<Function> = vec![skeleton(func)];
        for level in 0..config.enum_depth {
            let mut next = Vec::new();
            for base in &frontier {
                let (mut scratch, synth_id) = extension_scratch(base, &ret_ty);
                let scratch_cost = scratch.instruction_count();
                for op in BinOp::ALL {
                    let synthesized = synth_values(base);
                    for a in widths.iter().chain(const_values.iter()).chain(synthesized.iter()) {
                        for b in widths.iter().chain(const_values.iter()) {
                            if tried >= config.candidate_budget {
                                return EnumPlan { candidates, end: WalkEnd::Timeout { tried } };
                            }
                            let a_ty = base.value_type(a);
                            if a_ty != base.value_type(b) || !a_ty.is_int() || a_ty != ret_ty {
                                continue;
                            }
                            tried += 1;
                            if modeled_time(tried, config) > config.timeout {
                                return EnumPlan { candidates, end: WalkEnd::Timeout { tried } };
                            }
                            scratch.set_inst_kind(
                                synth_id,
                                InstKind::Binary {
                                    op,
                                    lhs: a.clone(),
                                    rhs: b.clone(),
                                    flags: IntFlags::none(),
                                },
                                a_ty,
                            );
                            if scratch_cost < original_cost {
                                candidates.push(PlannedCandidate {
                                    tried,
                                    depth: level + 1,
                                    func: scratch.clone(),
                                });
                            }
                            if next.len() < FRONTIER_CAP {
                                next.push(scratch.clone());
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
    }

    EnumPlan { candidates, end: WalkEnd::Exhausted { tried } }
}

/// [`superoptimize_with_cache`] with the candidate verification decomposed
/// into stealable shards on `runtime`: the enumeration planner walks the
/// space up front, the planned candidates split into depth-ordered chunks of
/// `shard_size`, idle workers steal and verify them against a frozen source
/// snapshot, and the first verified candidate *in plan order* wins (a find
/// cancels later chunks). Outcome, `candidates_tried`, `modeled` and
/// `found_at_depth` are identical to the serial search for every worker
/// count and shard size.
fn superoptimize_sharded_in(
    func: &Function,
    config: &SouperConfig,
    compile_cache: &Arc<CompileCache>,
    runtime: &ShardRuntime,
    shard_size: usize,
    arena: &mut EvalArena,
) -> SouperResult {
    let start = Instant::now();
    if let Some(reason) = unsupported_reason(func) {
        return SouperResult {
            outcome: Outcome::Unsupported(reason),
            elapsed: start.elapsed(),
            modeled: Duration::from_millis(400),
            candidates_tried: 0,
            found_at_depth: None,
        };
    }
    let mut canonical = func.clone();
    let _ = lpo_opt::pipeline::Pipeline::default().run(&mut canonical);
    let func = &canonical;

    let plan = plan_candidates(func, config);
    let frozen = FrozenCase::freeze(func, &quick_tv(), arena);

    let mut chunks: Vec<Vec<PlannedCandidate>> = Vec::new();
    let mut rest: &[PlannedCandidate] = &plan.candidates;
    let shard_size = shard_size.max(1);
    while !rest.is_empty() {
        let (chunk, tail) = rest.split_at(shard_size.min(rest.len()));
        chunks.push(chunk.to_vec());
        rest = tail;
    }

    let tasks: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let frozen = frozen.clone();
            let cache = compile_cache.clone();
            move |arena: &mut EvalArena| {
                let find = chunk
                    .into_iter()
                    .find(|cand| frozen.verify_outcome_only(&cand.func, Some(&cache), arena));
                let cut = find.is_some();
                (find, cut)
            }
        })
        .collect();
    let slots = runtime.fork_join(arena, tasks);

    // Ordered merge: the first executed slot carrying a find is the serial
    // search's find (every earlier chunk verified nothing).
    for slot in slots {
        if let ShardSlot::Executed(Some(cand)) = slot {
            return finish(start, Outcome::Found(cand.func), cand.tried, config, Some(cand.depth));
        }
    }
    match plan.end {
        WalkEnd::Exhausted { tried } => finish(start, Outcome::NotFound, tried, config, None),
        WalkEnd::Timeout { tried } => finish(start, Outcome::Timeout, tried, config, None),
    }
}

/// [`superoptimize_batch`] on the work-stealing shard scheduler: workers
/// pull whole cases off a cursor, each case's candidate verification forks
/// into stealable chunks, and workers out of cases drain the shard deque —
/// one huge enumeration no longer serializes the batch. Results are in
/// input order and bit-identical to [`superoptimize_batch`] (the internal
/// `plan_candidates` mirrors the serial walk's control flow exactly) for
/// every `jobs`/`shard_size`.
///
/// Also returns the run's shard accounting for the drivers' footers.
pub fn superoptimize_batch_sharded(
    functions: &[Function],
    config: &SouperConfig,
    jobs: usize,
    shard_size: usize,
) -> (Vec<SouperResult>, ShardStats) {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
    .max(1);
    let cache = Arc::new(CompileCache::new());
    let counters = Arc::new(ShardCounters::new());
    let runtime = ShardRuntime::new(jobs, counters);
    let results = runtime.run_cases(functions.len(), |index, arena| {
        superoptimize_sharded_in(&functions[index], config, &cache, &runtime, shard_size, arena)
    });
    let stats = runtime.stats();
    (results, stats)
}

/// A function that just returns `value`.
fn leaf_function(original: &Function, value: Value) -> Function {
    let mut f = Function::new("souper.tgt", original.ret_ty.clone());
    f.params = original.params.clone();
    let entry = f.entry();
    f.append_inst(entry, Instruction::new(InstKind::Ret { value: Some(value) }, Type::Void, ""));
    f
}

/// A copy of the signature with an empty body, used as the enumeration base.
fn skeleton(original: &Function) -> Function {
    let mut f = Function::new("souper.tgt", original.ret_ty.clone());
    f.params = original.params.clone();
    f
}

/// Values produced by instructions already synthesized into `base`.
fn synth_values(base: &Function) -> Vec<Value> {
    base.iter_inst_ids()
        .filter(|id| base.inst(*id).produces_value())
        .map(Value::Inst)
        .collect()
}

/// Builds the per-base enumeration scratch: the base body with one
/// synthesized binary-instruction slot (a placeholder immediately rewritten
/// by `set_inst_kind` per candidate) and a `ret` of that slot. Any `ret`
/// left by a previous extension level is dropped first, exactly as the old
/// per-candidate `extend` did.
fn extension_scratch(base: &Function, ret_ty: &Type) -> (Function, lpo_ir::instruction::InstId) {
    let mut f = base.clone();
    let entry = f.entry();
    if let Some(&last) = f.block(entry).insts.last() {
        if f.inst(last).is_terminator() {
            f.erase_inst(last);
        }
    }
    let name = format!("s{}", f.total_instruction_count());
    let width = ret_ty.int_width().unwrap_or(32);
    let placeholder = Value::int(width, 0);
    let id = f.append_inst(
        entry,
        Instruction::new(
            InstKind::Binary {
                op: BinOp::Add,
                lhs: placeholder.clone(),
                rhs: placeholder,
                flags: IntFlags::none(),
            },
            ret_ty.clone(),
            name,
        ),
    );
    f.append_inst(entry, Instruction::new(InstKind::Ret { value: Some(Value::Inst(id)) }, Type::Void, ""));
    (f, id)
}

/// A single-icmp candidate for boolean-returning sources.
fn icmp_function(original: &Function, pred: ICmpPred, a: Value, b: Value) -> Function {
    let mut f = skeleton(original);
    let entry = f.entry();
    let id = f.append_inst(
        entry,
        Instruction::new(InstKind::ICmp { pred, lhs: a, rhs: b }, Type::i1(), "c"),
    );
    f.append_inst(entry, Instruction::new(InstKind::Ret { value: Some(Value::Inst(id)) }, Type::Void, ""));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    #[test]
    fn batch_is_ordered_and_jobs_invariant() {
        let texts = [
            "define i32 @a(i32 %x) {\n %r = add i32 %x, 0\n ret i32 %r\n}",
            "define i1 @b(i8 %x) {\n %a = xor i8 %x, 12\n %c = icmp eq i8 %a, 5\n ret i1 %c\n}",
            "define i32 @c(i32 %x, i32 %y) {\n %a = add i32 %x, %y\n %b = sub i32 %a, %y\n ret i32 %b\n}",
        ];
        let functions: Vec<Function> = texts.iter().map(|t| parse_function(t).unwrap()).collect();
        let mut config = SouperConfig::with_enum(1);
        config.candidate_budget = 400;
        let serial = superoptimize_batch(&functions, &config, 1);
        let parallel = superoptimize_batch(&functions, &config, 3);
        assert_eq!(serial.len(), functions.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.outcome, p.outcome);
            assert_eq!(s.candidates_tried, p.candidates_tried);
            assert_eq!(s.modeled, p.modeled);
        }
    }

    fn run(text: &str, enum_depth: u32) -> SouperResult {
        let f = parse_function(text).unwrap();
        superoptimize(&f, &SouperConfig::with_enum(enum_depth))
    }

    #[test]
    fn sharded_search_is_as_if_serial() {
        // One case per terminal shape: a depth-0 find, a depth-1 icmp find,
        // an exhausted search, and a budget timeout — the sharded reports
        // must match the serial ones field for field, for every worker count
        // and shard size.
        let texts = [
            "define i8 @leaf(i8 %x) {\n\
             %a = and i8 %x, 15\n %b = and i8 %x, -16\n %o = or i8 %a, %b\n ret i8 %o\n}",
            "define i1 @cmp(i8 %x) {\n\
             %a = xor i8 %x, 12\n %c = icmp eq i8 %a, 5\n ret i1 %c\n}",
            "define i32 @none(i32 %x, i32 %y) {\n\
             %a = add i32 %x, %y\n %b = mul i32 %a, 3\n %c = sub i32 %b, %y\n ret i32 %c\n}",
            "define i64 @deep(i64 %x, i64 %y, i64 %z) {\n\
             %a = mul i64 %x, %y\n %b = add i64 %a, %z\n %c = xor i64 %b, %x\n ret i64 %c\n}",
        ];
        let functions: Vec<Function> = texts.iter().map(|t| parse_function(t).unwrap()).collect();
        let mut config = SouperConfig::with_enum(2);
        config.candidate_budget = 600;
        let serial = superoptimize_batch(&functions, &config, 1);
        assert!(serial[0].found() && serial[0].found_at_depth == Some(0));
        assert!(serial[1].found() && serial[1].found_at_depth == Some(1));
        assert!(!serial[2].found());
        assert_eq!(serial[3].outcome, Outcome::Timeout);

        for jobs in [1, 3] {
            for shard_size in [1, 7, 64, usize::MAX] {
                let (sharded, _) = superoptimize_batch_sharded(&functions, &config, jobs, shard_size);
                assert_eq!(sharded.len(), serial.len());
                for (s, p) in serial.iter().zip(&sharded) {
                    assert_eq!(s.outcome, p.outcome, "jobs {jobs}, shard {shard_size}");
                    assert_eq!(s.candidates_tried, p.candidates_tried, "jobs {jobs}, shard {shard_size}");
                    assert_eq!(s.modeled, p.modeled, "jobs {jobs}, shard {shard_size}");
                    assert_eq!(s.found_at_depth, p.found_at_depth, "jobs {jobs}, shard {shard_size}");
                }
            }
        }
    }

    #[test]
    fn rejects_unsupported_instructions_like_the_real_tool() {
        // The clamp of Figure 1 uses llvm.umin — Souper cannot handle it.
        let r = run(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
            3,
        );
        assert!(matches!(&r.outcome, Outcome::Unsupported(reason) if reason.contains("umin")));

        let r = run("define double @f(double %x) {\n %r = fadd double %x, 1.0\n ret double %r\n}", 1);
        assert!(matches!(r.outcome, Outcome::Unsupported(_)));

        let r = run(
            "define i32 @f(ptr %p) {\n %v = load i32, ptr %p, align 4\n ret i32 %v\n}",
            1,
        );
        assert!(matches!(r.outcome, Outcome::Unsupported(_)));

        let r = run(
            "define <4 x i32> @f(<4 x i32> %x) {\n %r = add <4 x i32> %x, splat (i32 1)\n ret <4 x i32> %r\n}",
            1,
        );
        assert!(matches!(r.outcome, Outcome::Unsupported(_)));
    }

    #[test]
    fn default_mode_finds_identity_results() {
        // or (and x, 15), (and x, -16) == x — the result is an existing value,
        // findable even with Enum = 0.
        let r = run(
            "define i8 @f(i8 %x) {\n\
             %a = and i8 %x, 15\n\
             %b = and i8 %x, -16\n\
             %o = or i8 %a, %b\n\
             ret i8 %o\n}",
            0,
        );
        assert!(r.found(), "outcome: {:?}", r.outcome);
        assert!(r.candidates_tried > 0);

        // select (x == 0), 0, x == x as well.
        let r = run(
            "define i32 @f(i32 %x) {\n\
             %c = icmp eq i32 %x, 0\n\
             %s = select i1 %c, i32 0, i32 %x\n\
             ret i32 %s\n}",
            0,
        );
        assert!(r.found());
    }

    #[test]
    fn enumerative_mode_synthesizes_small_replacements() {
        // icmp eq (xor x, 12), 5  ==  icmp eq x, 9: needs Enum >= 1.
        let text = "define i1 @f(i8 %x) {\n %a = xor i8 %x, 12\n %c = icmp eq i8 %a, 5\n ret i1 %c\n}";
        let shallow = run(text, 0);
        assert!(!shallow.found());
        let deep = run(text, 2);
        assert!(deep.found(), "outcome: {:?}", deep.outcome);
        if let Outcome::Found(replacement) = &deep.outcome {
            assert!(replacement.instruction_count() < 2);
        }
    }

    #[test]
    fn enumeration_cost_grows_with_depth() {
        let text = "define i32 @f(i32 %x, i32 %y) {\n\
             %a = add i32 %x, %y\n\
             %b = mul i32 %a, 3\n\
             %c = sub i32 %b, %y\n\
             ret i32 %c\n}";
        let d0 = run(text, 0);
        let d2 = run(text, 2);
        assert!(!d0.found() && !d2.found());
        assert!(d2.candidates_tried > d0.candidates_tried);
        assert!(d2.modeled > d0.modeled);
    }

    #[test]
    fn timeout_is_modelled() {
        let f = parse_function(
            "define i64 @f(i64 %x, i64 %y, i64 %z) {\n\
             %a = mul i64 %x, %y\n\
             %b = add i64 %a, %z\n\
             %c = xor i64 %b, %x\n\
             %d = sub i64 %c, %y\n\
             ret i64 %d\n}",
        )
        .unwrap();
        let config = SouperConfig { enum_depth: 3, timeout: Duration::from_secs(30), candidate_budget: 100_000 };
        let r = superoptimize(&f, &config);
        assert_eq!(r.outcome, Outcome::Timeout);
        assert_eq!(r.modeled, config.timeout);
    }

    #[test]
    fn unsupported_reason_details() {
        let f = parse_function("define i32 @f(i32 %x) {\n %r = add i32 %x, 1\n ret i32 %r\n}").unwrap();
        assert!(unsupported_reason(&f).is_none());
        let g = parse_function("define void @g(ptr %p) {\n store i32 1, ptr %p, align 4\n ret void\n}").unwrap();
        assert!(unsupported_reason(&g).unwrap().contains("pointer"));
    }
}
