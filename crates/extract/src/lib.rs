//! # lpo-extract
//!
//! The instruction-sequence extractor — Algorithm 2 of the LPO paper.
//!
//! Given an optimized module, the extractor walks every basic block in every
//! function **in reverse order**, grows all *dependent instruction sequences*
//! (an instruction joins every sequence that already uses its result, and
//! otherwise starts a new sequence), wraps each sequence as a standalone
//! function, filters out sequences the optimizer can still improve in
//! isolation, and deduplicates by structural hash.
//!
//! ```
//! use lpo_extract::{Extractor, ExtractConfig};
//! use lpo_ir::parser::parse_module;
//!
//! let module = parse_module(
//!     "define i8 @f(i32 %x) {\n\
//!        %c = icmp slt i32 %x, 0\n\
//!        %m = call i32 @llvm.umin.i32(i32 %x, i32 255)\n\
//!        %t = trunc nuw i32 %m to i8\n\
//!        %s = select i1 %c, i8 0, i8 %t\n\
//!        ret i8 %s\n}",
//! )?;
//! let mut extractor = Extractor::new(ExtractConfig::default());
//! let sequences = extractor.extract_module(&module);
//! assert!(!sequences.is_empty());
//! # Ok::<(), lpo_ir::parser::ParseError>(())
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

use lpo_ir::function::{Function, Param};
use lpo_ir::hash::{hash_function, Digest};
use lpo_ir::instruction::{BlockId, InstId, InstKind, Instruction, Value};
use lpo_ir::module::Module;
use lpo_ir::types::Type;
use lpo_opt::pipeline::{OptLevel, Pipeline};
use std::collections::{HashMap, HashSet};

/// Configuration of the extractor.
#[derive(Clone, Debug)]
pub struct ExtractConfig {
    /// Sequences with fewer non-terminator instructions than this are dropped
    /// (single instructions rarely expose interesting peepholes).
    pub min_instructions: usize,
    /// Sequences with more instructions than this are dropped to keep the LLM
    /// prompt and the verification tractable.
    pub max_instructions: usize,
    /// Whether to discard sequences the optimizer can still improve when
    /// isolated (line 7 of Algorithm 2).
    pub filter_already_optimizable: bool,
    /// The optimization level used for that filter.
    pub opt_level: OptLevel,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        Self {
            min_instructions: 2,
            max_instructions: 24,
            filter_already_optimizable: true,
            opt_level: OptLevel::O2,
        }
    }
}

/// One extracted sequence, wrapped as a standalone function.
#[derive(Clone, Debug)]
pub struct ExtractedSequence {
    /// The wrapped function (`@src`), with undefined operands turned into parameters.
    pub function: Function,
    /// The structural hash used for deduplication.
    pub digest: Digest,
    /// Name of the function the sequence came from.
    pub source_function: String,
    /// Label of the basic block the sequence came from.
    pub source_block: String,
    /// The name of the module the sequence came from.
    pub source_module: String,
}

/// Statistics accumulated while extracting a corpus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Sequences produced before any filtering.
    pub raw_sequences: usize,
    /// Sequences dropped because the optimizer could still improve them.
    pub filtered_optimizable: usize,
    /// Sequences dropped because they were outside the size bounds.
    pub filtered_size: usize,
    /// Sequences dropped as duplicates of previously seen sequences.
    pub duplicates: usize,
    /// Unique sequences kept.
    pub unique: usize,
}

/// The extractor. Keeps the cross-module deduplication set (`dedup_set` in
/// Algorithm 2), so extracting a whole corpus module-by-module deduplicates
/// globally.
#[derive(Debug)]
pub struct Extractor {
    config: ExtractConfig,
    dedup_set: HashSet<Digest>,
    stats: ExtractStats,
    pipeline: Pipeline,
}

impl Extractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: ExtractConfig) -> Self {
        let pipeline = Pipeline::new(config.opt_level);
        Self { config, dedup_set: HashSet::new(), stats: ExtractStats::default(), pipeline }
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> ExtractStats {
        self.stats
    }

    /// Number of distinct sequence digests seen so far.
    pub fn seen(&self) -> usize {
        self.dedup_set.len()
    }

    /// Extracts all unique dependent instruction sequences from a module
    /// (the `Extract` function of Algorithm 2).
    pub fn extract_module(&mut self, module: &Module) -> Vec<ExtractedSequence> {
        let mut result = Vec::new();
        for func in &module.functions {
            for (block_id, block) in func.iter_blocks() {
                let sequences = extract_sequences_from_block(func, block_id);
                for seq in sequences {
                    self.stats.raw_sequences += 1;
                    let Some(wrapped) = wrap_as_function(func, &seq) else {
                        self.stats.filtered_size += 1;
                        continue;
                    };
                    let count = wrapped.instruction_count();
                    if count < self.config.min_instructions || count > self.config.max_instructions {
                        self.stats.filtered_size += 1;
                        continue;
                    }
                    if self.config.filter_already_optimizable {
                        let mut probe = wrapped.clone();
                        if self.pipeline.run(&mut probe).changed {
                            self.stats.filtered_optimizable += 1;
                            continue;
                        }
                    }
                    let digest = hash_function(&wrapped);
                    if !self.dedup_set.insert(digest) {
                        self.stats.duplicates += 1;
                        continue;
                    }
                    self.stats.unique += 1;
                    result.push(ExtractedSequence {
                        function: wrapped,
                        digest,
                        source_function: func.name.clone(),
                        source_block: block.name.clone(),
                        source_module: module.name.clone(),
                    });
                }
            }
        }
        result
    }

    /// Extracts from every module of a corpus, preserving global deduplication.
    pub fn extract_corpus<'m>(
        &mut self,
        modules: impl IntoIterator<Item = &'m Module>,
    ) -> Vec<ExtractedSequence> {
        modules.into_iter().flat_map(|m| self.extract_module(m)).collect()
    }
}

/// `ExtractSeqsFromBB` of Algorithm 2: walks the block's instructions in
/// reverse order and grows every dependent sequence.
pub fn extract_sequences_from_block(func: &Function, block: BlockId) -> Vec<Vec<InstId>> {
    let mut seq_set: Vec<Vec<InstId>> = Vec::new();
    for &inst_id in func.block(block).insts.iter().rev() {
        let inst = func.inst(inst_id);
        if inst.is_terminator() {
            continue;
        }
        let mut added = false;
        let mut new_set: Vec<Vec<InstId>> = Vec::with_capacity(seq_set.len());
        for seq in &seq_set {
            let depends = seq.iter().any(|&member| {
                func.inst(member)
                    .kind
                    .operands()
                    .iter()
                    .any(|op| matches!(op, Value::Inst(dep) if *dep == inst_id))
            });
            if depends {
                let mut extended = Vec::with_capacity(seq.len() + 1);
                extended.push(inst_id);
                extended.extend_from_slice(seq);
                new_set.push(extended);
                added = true;
            } else {
                new_set.push(seq.clone());
            }
        }
        if !added {
            new_set.push(vec![inst_id]);
        }
        seq_set = new_set;
    }
    seq_set
}

/// `WrapAsFunc` of Algorithm 2: turns an instruction sequence into a
/// standalone function. Operands defined outside the sequence become function
/// parameters; a `ret` of the last instruction's value is appended.
///
/// Returns `None` when the sequence cannot be wrapped (e.g. it contains a
/// `phi`, which needs control flow we do not extract, or it fails the IR
/// verifier after wrapping).
pub fn wrap_as_function(func: &Function, sequence: &[InstId]) -> Option<Function> {
    if sequence.is_empty() {
        return None;
    }
    let members: HashSet<InstId> = sequence.iter().copied().collect();
    // Phi nodes reference control flow that the wrapped function does not have.
    if sequence.iter().any(|id| matches!(func.inst(*id).kind, InstKind::Phi { .. })) {
        return None;
    }

    let mut wrapped = Function::new("src", Type::Void);
    let entry = wrapped.entry();
    let mut param_map: HashMap<String, Value> = HashMap::new();
    let mut value_map: HashMap<InstId, Value> = HashMap::new();
    let mut param_count = 0usize;

    for &inst_id in sequence {
        let inst = func.inst(inst_id);
        let mut new_kind = inst.kind.clone();
        for op in new_kind.operands_mut() {
            let mapped = match &*op {
                Value::Inst(dep) if members.contains(dep) => {
                    value_map.get(dep).cloned().expect("sequence is in dependency order")
                }
                Value::Const(_) => op.clone(),
                other => {
                    let key = func.describe_value(other);
                    if let Some(v) = param_map.get(&key) {
                        v.clone()
                    } else {
                        let ty = func.value_type(other);
                        wrapped.params.push(Param { name: format!("a{param_count}"), ty });
                        param_count += 1;
                        let v = Value::Arg(wrapped.params.len() - 1);
                        param_map.insert(key, v.clone());
                        v
                    }
                }
            };
            *op = mapped;
        }
        let new_id = wrapped.append_inst(
            entry,
            Instruction::new(new_kind, inst.ty.clone(), format!("v{}", value_map.len())),
        );
        value_map.insert(inst_id, Value::Inst(new_id));
    }

    // Return the value produced by the last value-producing instruction.
    let last_value = sequence
        .iter()
        .rev()
        .find(|id| func.inst(**id).produces_value())
        .and_then(|id| value_map.get(id).cloned());
    match last_value {
        Some(v) => {
            let ret_ty = wrapped.value_type(&v);
            wrapped.ret_ty = ret_ty;
            wrapped.append_inst(entry, Instruction::new(InstKind::Ret { value: Some(v) }, Type::Void, ""));
        }
        None => {
            // A sequence of only stores: return void.
            wrapped.ret_ty = Type::Void;
            wrapped.append_inst(entry, Instruction::new(InstKind::Ret { value: None }, Type::Void, ""));
        }
    }
    lpo_ir::verifier::verify_function(&wrapped).ok()?;
    Some(wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_module;
    use lpo_ir::printer::print_function;

    fn module(text: &str) -> Module {
        parse_module(text).unwrap()
    }

    #[test]
    fn reverse_walk_builds_dependent_sequences() {
        let m = module(
            "define i32 @f(i32 %x, i32 %y) {\n\
             %a = add i32 %x, 1\n\
             %b = mul i32 %a, 2\n\
             %c = xor i32 %y, 7\n\
             %d = add i32 %b, %c\n\
             ret i32 %d\n}",
        );
        let f = &m.functions[0];
        let seqs = extract_sequences_from_block(f, f.entry());
        // All four instructions feed %d, so the reverse walk grows one maximal
        // dependent sequence containing everything.
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].len(), 4);
        // Sequences come out in forward (dependency) order.
        let names: Vec<_> = seqs[0].iter().map(|id| f.inst(*id).name.clone()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn independent_chains_become_separate_sequences() {
        let m = module(
            "define void @f(ptr %p, ptr %q, i32 %x) {\n\
             %a = add i32 %x, 1\n\
             store i32 %a, ptr %p, align 4\n\
             %b = mul i32 %x, 3\n\
             store i32 %b, ptr %q, align 4\n\
             ret void\n}",
        );
        let f = &m.functions[0];
        let seqs = extract_sequences_from_block(f, f.entry());
        assert_eq!(seqs.len(), 2);
        assert!(seqs.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn wrapping_turns_free_values_into_parameters() {
        let m = module(
            "define i8 @f(i32 %x) {\n\
             %c = icmp slt i32 %x, 0\n\
             %m = call i32 @llvm.umin.i32(i32 %x, i32 255)\n\
             %t = trunc nuw i32 %m to i8\n\
             %s = select i1 %c, i8 0, i8 %t\n\
             ret i8 %s\n}",
        );
        let f = &m.functions[0];
        let seqs = extract_sequences_from_block(f, f.entry());
        let longest = seqs.iter().max_by_key(|s| s.len()).unwrap();
        let wrapped = wrap_as_function(f, longest).unwrap();
        assert_eq!(wrapped.name, "src");
        assert_eq!(wrapped.params.len(), 1);
        assert_eq!(wrapped.ret_ty, Type::i8());
        assert_eq!(wrapped.instruction_count(), 4);
        let text = print_function(&wrapped);
        assert!(text.contains("select"));
        assert!(text.contains("ret i8"));
    }

    #[test]
    fn wrapping_memory_sequences_keeps_loads_and_geps() {
        let m = module(
            "define i32 @f(ptr %p, i64 %i) {\n\
             %g = getelementptr inbounds nuw i32, ptr %p, i64 %i\n\
             %v = load i32, ptr %g, align 4\n\
             %w = mul i32 %v, 3\n\
             ret i32 %w\n}",
        );
        let f = &m.functions[0];
        let seqs = extract_sequences_from_block(f, f.entry());
        let wrapped = wrap_as_function(f, &seqs[0]).unwrap();
        assert_eq!(wrapped.params.len(), 2);
        assert!(wrapped.params.iter().any(|p| p.ty == Type::Ptr));
        assert!(wrapped.params.iter().any(|p| p.ty == Type::i64()));
        assert!(print_function(&wrapped).contains("getelementptr"));
    }

    #[test]
    fn extractor_deduplicates_and_filters() {
        let m = module(
            "define i8 @a(i32 %x) {\n\
             %c = icmp slt i32 %x, 0\n\
             %m = call i32 @llvm.umin.i32(i32 %x, i32 255)\n\
             %t = trunc nuw i32 %m to i8\n\
             %s = select i1 %c, i8 0, i8 %t\n\
             ret i8 %s\n}\n\
             define i8 @b(i32 %y) {\n\
             %c2 = icmp slt i32 %y, 0\n\
             %m2 = call i32 @llvm.umin.i32(i32 %y, i32 255)\n\
             %t2 = trunc nuw i32 %m2 to i8\n\
             %s2 = select i1 %c2, i8 0, i8 %t2\n\
             ret i8 %s2\n}\n\
             define i32 @c(i32 %z) {\n\
             %u = add i32 %z, 0\n\
             %v = mul i32 %u, 1\n\
             ret i32 %v\n}",
        );
        let mut ex = Extractor::new(ExtractConfig::default());
        let seqs = ex.extract_module(&m);
        let stats = ex.stats();
        assert!(stats.duplicates > 0, "identical bodies must deduplicate: {stats:?}");
        assert!(stats.filtered_optimizable > 0, "trivially optimizable bodies must be filtered: {stats:?}");
        assert_eq!(stats.unique, seqs.len());
        assert!(seqs.iter().any(|s| print_function(&s.function).contains("umin")));
    }

    #[test]
    fn phi_sequences_are_skipped_and_terminators_ignored() {
        let m = module(
            "define i32 @loop(i32 %n) {\n\
             entry:\n  br label %h\n\
             h:\n\
              %i = phi i32 [ 0, %entry ], [ %n2, %h ]\n\
              %n2 = add i32 %i, 1\n\
              %c = icmp slt i32 %n2, %n\n\
              br i1 %c, label %h, label %x\n\
             x:\n  ret i32 %n2\n}",
        );
        let mut ex = Extractor::new(ExtractConfig { min_instructions: 1, ..Default::default() });
        let seqs = ex.extract_module(&m);
        for s in &seqs {
            assert!(!print_function(&s.function).contains("phi"));
        }
    }

    #[test]
    fn corpus_extraction_tracks_global_stats() {
        let m1 = module("define i32 @f(i32 %x) {\n %a = mul i32 %x, 7\n %b = add i32 %a, %x\n ret i32 %b\n}");
        let m2 = module("define i32 @g(i32 %y) {\n %a = mul i32 %y, 7\n %b = add i32 %a, %y\n ret i32 %b\n}");
        let mut ex = Extractor::new(ExtractConfig::default());
        let all = ex.extract_corpus([&m1, &m2]);
        assert_eq!(ex.stats().duplicates, 1);
        assert_eq!(all.len(), ex.stats().unique);
        assert!(ex.seen() >= all.len());
        assert_eq!(all[0].source_function, "f");
        assert_eq!(all[0].source_block, "entry");
    }

    #[test]
    fn size_bounds_are_respected() {
        let m = module(
            "define i32 @f(i32 %x) {\n %a = mul i32 %x, 7\n %b = add i32 %a, %x\n %c = xor i32 %b, 3\n ret i32 %c\n}",
        );
        let mut ex = Extractor::new(ExtractConfig { max_instructions: 2, ..Default::default() });
        let seqs = ex.extract_module(&m);
        assert!(seqs.iter().all(|s| s.function.instruction_count() <= 2));
        assert!(ex.stats().filtered_size > 0);
    }
}
